//! Dense linear solving (Gaussian elimination with partial pivoting),
//! used by the ridge-regression baseline.

use crate::Matrix;

impl Matrix {
    /// Solves `A·x = b` for square `A` via Gaussian elimination with
    /// partial pivoting. Returns `None` if `A` is (numerically) singular.
    ///
    /// # Panics
    /// Panics if `A` is not square or `b` is not a matching column vector.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        let n = self.rows();
        assert_eq!(n, self.cols(), "solve: matrix must be square");
        assert_eq!(b.shape(), (n, 1), "solve: rhs must be {n}x1");
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot: explicit scan instead of `max_by(..).expect(..)`
            // so there is no panicking path. `>` never selects a NaN entry;
            // a NaN pivot can then only happen when the whole column is NaN,
            // and it propagates into the solution as IEEE-754 demands.
            let mut pivot_row = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot_row, col)].abs() {
                    pivot_row = r;
                }
            }
            let pivot = a[(pivot_row, col)];
            if pivot.abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(pivot_row, c)];
                    a[(pivot_row, c)] = tmp;
                }
                let tmp = x[(col, 0)];
                x[(col, 0)] = x[(pivot_row, 0)];
                x[(pivot_row, 0)] = tmp;
            }
            // Eliminate below.
            for r in col + 1..n {
                let factor = a[(r, col)] / a[(col, col)];
                // lint: allow(float-eq) — exact-zero elimination skip; NaN factors compare unequal and still eliminate
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[(r, c)] -= factor * a[(col, c)];
                }
                x[(r, 0)] -= factor * x[(col, 0)];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[(col, 0)];
            for c in col + 1..n {
                acc -= a[(col, c)] * x[(c, 0)];
            }
            x[(col, 0)] = acc / a[(col, col)];
        }
        x.all_finite().then_some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_matrix_eq;

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3]·x = [3; 5] → x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::col_vector(&[3.0, 5.0]);
        let x = a.solve(&b).expect("non-singular");
        assert_matrix_eq(&x, &Matrix::col_vector(&[0.8, 1.4]), 1e-5);
    }

    #[test]
    fn identity_returns_rhs() {
        let b = Matrix::col_vector(&[1.0, -2.0, 3.0]);
        let x = Matrix::eye(3).solve(&b).unwrap();
        assert_matrix_eq(&x, &b, 1e-6);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::col_vector(&[1.0, 2.0]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::col_vector(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert_matrix_eq(&x, &Matrix::col_vector(&[3.0, 2.0]), 1e-6);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        let a = Matrix::from_fn(5, 5, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0 + if r == c { 8.0 } else { 0.0 });
        let b = Matrix::from_fn(5, 1, |r, _| r as f32 - 2.0);
        let x = a.solve(&b).unwrap();
        let residual = a.matmul(&x).sub(&b);
        assert!(residual.max_abs() < 1e-4, "residual {}", residual.max_abs());
    }
}
