//! Read-mostly LRU cache for spectral precomputation.
//!
//! The expensive, model-independent half of a CasCN prediction — building
//! the CasLaplacian, scaling it, and expanding the Chebyshev bases
//! (Eq. 7–10) — depends only on the cascade and the observation window,
//! not on the learned parameters. A serving process that sees the same
//! cascade repeatedly (polling clients, load tests, hot content) can reuse
//! the [`SpectralBasis`] across requests *and across hot model reloads*.
//!
//! The cache is a sorted `Vec` searched by binary search — no `HashMap`,
//! so lookup order and eviction are fully deterministic given the access
//! sequence. Hits take only the read lock: recency is tracked by a relaxed
//! per-entry [`AtomicU64`] stamped from a global tick, so the common path
//! never serializes readers. Misses compute the basis *outside* any lock
//! and take the write lock only to publish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cascn_graph::SpectralBasis;

/// Cache key: the cascade id and the exact window bits. Windows are keyed
/// by `f64::to_bits` so two windows hit the same entry only when they are
/// bit-identical — the same contract the spectral pipeline itself has.
type Key = (u64, u64);

struct Entry {
    key: Key,
    basis: Arc<SpectralBasis>,
    /// Global tick at last access; relaxed ordering is fine because the
    /// stamp only steers eviction, never correctness.
    last_used: AtomicU64,
}

/// Point-in-time counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub approx_bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache has seen no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, deterministic LRU of spectral bases keyed by
/// `(cascade id, window bits)`.
pub struct BasisCache {
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: RwLock<Vec<Entry>>,
}

impl BasisCache {
    /// A cache holding at most `capacity` bases. Zero disables caching:
    /// every lookup computes and nothing is retained.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: RwLock::new(Vec::new()),
        }
    }

    /// Returns the basis for `(cascade_id, window)`, computing it with
    /// `compute` on a miss. The closure runs outside every lock, so slow
    /// spectral work never blocks concurrent hits; when two threads race
    /// on the same key the loser's computation is discarded in favor of
    /// the published entry.
    pub fn get_or_insert_with(
        &self,
        cascade_id: u64,
        window: f64,
        compute: impl FnOnce() -> SpectralBasis,
    ) -> Arc<SpectralBasis> {
        let key: Key = (cascade_id, window.to_bits());
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compute());
        }

        {
            let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
            if let Ok(idx) = entries.binary_search_by_key(&key, |e| e.key) {
                let now = self.tick.fetch_add(1, Ordering::Relaxed);
                entries[idx].last_used.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entries[idx].basis);
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let basis = Arc::new(compute());

        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        match entries.binary_search_by_key(&key, |e| e.key) {
            // Another thread published while we computed — keep theirs so
            // every caller holding this key sees one shared allocation.
            Ok(idx) => Arc::clone(&entries[idx].basis),
            Err(_) => {
                if entries.len() >= self.capacity {
                    // Evict the least-recently-used entry; ties (only
                    // possible before any hit bumps a stamp) break toward
                    // the smallest key so eviction stays deterministic.
                    if let Some(victim) = (0..entries.len())
                        .min_by_key(|&i| (entries[i].last_used.load(Ordering::Relaxed), entries[i].key))
                    {
                        entries.remove(victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Recompute the slot — eviction may have shifted it.
                let at = entries
                    .binary_search_by_key(&key, |e| e.key)
                    .unwrap_or_else(|at| at);
                let now = self.tick.fetch_add(1, Ordering::Relaxed);
                entries.insert(
                    at,
                    Entry {
                        key,
                        basis: Arc::clone(&basis),
                        last_used: AtomicU64::new(now),
                    },
                );
                basis
            }
        }
    }

    /// Current counters and an estimate of resident bytes.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: entries.len(),
            approx_bytes: entries.iter().map(|e| e.basis.approx_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_tensor::Matrix;

    fn tiny_basis(value: f32) -> SpectralBasis {
        let lap = Matrix::from_fn(2, 2, |r, c| if r == 0 && c == 0 { value } else { 0.0 });
        SpectralBasis::from_laplacian(&lap, Some(2.0), 1)
    }

    #[test]
    fn hit_returns_the_cached_allocation() {
        let cache = BasisCache::new(4);
        let a = cache.get_or_insert_with(7, 25.0, || tiny_basis(1.0));
        let b = cache.get_or_insert_with(7, 25.0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.approx_bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_bits_distinguish_entries() {
        let cache = BasisCache::new(4);
        let _ = cache.get_or_insert_with(7, 25.0, || tiny_basis(1.0));
        let _ = cache.get_or_insert_with(7, 26.0, || tiny_basis(2.0));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = BasisCache::new(2);
        let _ = cache.get_or_insert_with(1, 1.0, || tiny_basis(1.0));
        let _ = cache.get_or_insert_with(2, 1.0, || tiny_basis(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = cache.get_or_insert_with(1, 1.0, || panic!("cached"));
        let _ = cache.get_or_insert_with(3, 1.0, || tiny_basis(3.0));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // 1 survived, 2 was evicted.
        let _ = cache.get_or_insert_with(1, 1.0, || panic!("1 must survive"));
        let mut recomputed = false;
        let _ = cache.get_or_insert_with(2, 1.0, || {
            recomputed = true;
            tiny_basis(2.0)
        });
        assert!(recomputed, "2 was evicted and must recompute");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = BasisCache::new(0);
        let mut calls = 0;
        for _ in 0..3 {
            let _ = cache.get_or_insert_with(1, 1.0, || {
                calls += 1;
                tiny_basis(1.0)
            });
        }
        assert_eq!(calls, 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 0));
    }
}
