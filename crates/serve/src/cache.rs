//! Read-mostly LRU cache for spectral precomputation.
//!
//! The expensive, model-independent half of a CasCN prediction — building
//! the CasLaplacian, scaling it, and expanding the Chebyshev bases
//! (Eq. 7–10) — depends only on the cascade and the observation window,
//! not on the learned parameters. A serving process that sees the same
//! cascade repeatedly (polling clients, load tests, hot content) can reuse
//! the [`SpectralBasis`] across requests *and across hot model reloads*.
//!
//! The cache is a sorted `Vec` searched by binary search — no `HashMap`,
//! so lookup order and eviction are fully deterministic given the access
//! sequence. Hits take only the read lock: recency is tracked by a relaxed
//! per-entry [`AtomicU64`] stamped from a global tick, so the common path
//! never serializes readers. Misses compute the basis *outside* any lock
//! and take the write lock only to publish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cascn_cascades::Cascade;
use cascn_graph::SpectralBasis;

use crate::sync::{read_recover, write_recover};

/// Content fingerprint of a cascade — FNV-1a 64 over the id, start time,
/// and every event. Picks the cache slot; it is **not** collision
/// resistant (FNV is not cryptographic, and an adversarial client can
/// craft colliding payloads), so every hit is verified against the full
/// cascade content stored in the entry before a basis is shared.
pub fn cascade_key(c: &Cascade) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(c.id);
    mix(c.start_time.to_bits());
    for e in &c.events {
        mix(e.user);
        mix(e.parent.map_or(u64::MAX, |p| p as u64));
        mix(e.time.to_bits());
    }
    h
}

/// Bitwise content equality: id, start-time bits, and every event field.
/// Times compare by bit pattern — the same identity the spectral pipeline
/// uses (an IEEE `==` would let `NaN != NaN` defeat verification).
fn same_cascade(a: &Cascade, b: &Cascade) -> bool {
    a.id == b.id
        && a.start_time.to_bits() == b.start_time.to_bits()
        && a.events.len() == b.events.len()
        && a.events.iter().zip(&b.events).all(|(x, y)| {
            x.user == y.user && x.parent == y.parent && x.time.to_bits() == y.time.to_bits()
        })
}

/// Cache key: the cascade content fingerprint and the exact window bits.
/// Windows are keyed by `f64::to_bits` so two windows hit the same entry
/// only when they are bit-identical — the same contract the spectral
/// pipeline itself has.
type Key = (u64, u64);

struct Entry {
    key: Key,
    /// The exact cascade this entry was computed from. Hits compare their
    /// cascade against it, so a fingerprint collision degrades to
    /// recompute-and-replace — never to silently serving another
    /// cascade's basis.
    cascade: Cascade,
    basis: Arc<SpectralBasis>,
    /// Global tick at last access; relaxed ordering is fine because the
    /// stamp only steers eviction, never correctness.
    last_used: AtomicU64,
    /// True for entries restored from a disk snapshot ([`BasisCache::seed`])
    /// that have not been recomputed since — hits on them are the
    /// "warm-start" signal a restarted replica reports.
    warm: bool,
}

/// Point-in-time counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Fingerprint collisions detected by content verification: a lookup
    /// landed on an entry whose stored cascade differs bit-for-bit.
    pub collisions: u64,
    /// Hits served from snapshot-restored (warm) entries — nonzero on a
    /// restarted replica proves the persisted cache actually carried state
    /// across the crash.
    pub warm_hits: u64,
    pub entries: usize,
    /// Entries currently resident that came from a snapshot restore.
    pub warm_entries: usize,
    pub approx_bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache has seen no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, deterministic LRU of spectral bases keyed by
/// `(cascade id, window bits)`.
pub struct BasisCache {
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
    warm_hits: AtomicU64,
    entries: RwLock<Vec<Entry>>,
}

impl BasisCache {
    /// A cache holding at most `capacity` bases. Zero disables caching:
    /// every lookup computes and nothing is retained.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            entries: RwLock::new(Vec::new()),
        }
    }

    /// Returns the basis for `(cascade, window)`, computing it with
    /// `compute` on a miss. The closure runs outside every lock, so slow
    /// spectral work never blocks concurrent hits; when two threads race
    /// on the same key the loser's computation is discarded in favor of
    /// the published entry.
    ///
    /// Entries are *located* by the [`cascade_key`] fingerprint but
    /// *verified* by full content comparison, so two different cascades
    /// whose fingerprints collide thrash one slot (recompute-and-replace,
    /// counted in [`CacheStats::collisions`]) instead of silently sharing
    /// a basis.
    pub fn get_or_insert_with(
        &self,
        cascade: &Cascade,
        window: f64,
        compute: impl FnOnce() -> SpectralBasis,
    ) -> Arc<SpectralBasis> {
        self.get_or_insert_keyed((cascade_key(cascade), window.to_bits()), cascade, compute)
    }

    /// [`get_or_insert_with`](Self::get_or_insert_with) with the slot key
    /// supplied by the caller — split out so tests can force two cascades
    /// onto one slot without forging a real FNV collision.
    fn get_or_insert_keyed(
        &self,
        key: Key,
        cascade: &Cascade,
        compute: impl FnOnce() -> SpectralBasis,
    ) -> Arc<SpectralBasis> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compute());
        }

        {
            let entries = read_recover(&self.entries);
            if let Ok(idx) = entries.binary_search_by_key(&key, |e| e.key) {
                if same_cascade(&entries[idx].cascade, cascade) {
                    let now = self.tick.fetch_add(1, Ordering::Relaxed);
                    entries[idx].last_used.store(now, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if entries[idx].warm {
                        self.warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Arc::clone(&entries[idx].basis);
                }
                // Fingerprint collision: fall through to the miss path;
                // the write lock below replaces the occupant.
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let basis = Arc::new(compute());

        let mut entries = write_recover(&self.entries);
        match entries.binary_search_by_key(&key, |e| e.key) {
            Ok(idx) => {
                if same_cascade(&entries[idx].cascade, cascade) {
                    // Another thread published the same content while we
                    // computed — keep theirs so every caller holding this
                    // key sees one shared allocation.
                    Arc::clone(&entries[idx].basis)
                } else {
                    // Collision: last writer wins the slot. The colliding
                    // pair will thrash it, but neither can ever be served
                    // the other's basis.
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    let now = self.tick.fetch_add(1, Ordering::Relaxed);
                    let entry = &mut entries[idx];
                    entry.cascade = cascade.clone();
                    entry.basis = Arc::clone(&basis);
                    entry.last_used.store(now, Ordering::Relaxed);
                    entry.warm = false;
                    basis
                }
            }
            Err(_) => {
                if entries.len() >= self.capacity {
                    // Evict the least-recently-used entry; ties (only
                    // possible before any hit bumps a stamp) break toward
                    // the smallest key so eviction stays deterministic.
                    if let Some(victim) = (0..entries.len())
                        .min_by_key(|&i| (entries[i].last_used.load(Ordering::Relaxed), entries[i].key))
                    {
                        entries.remove(victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Recompute the slot — eviction may have shifted it.
                let at = entries
                    .binary_search_by_key(&key, |e| e.key)
                    .unwrap_or_else(|at| at);
                let now = self.tick.fetch_add(1, Ordering::Relaxed);
                entries.insert(
                    at,
                    Entry {
                        key,
                        cascade: cascade.clone(),
                        basis: Arc::clone(&basis),
                        last_used: AtomicU64::new(now),
                        warm: false,
                    },
                );
                basis
            }
        }
    }

    /// Publishes a precomputed basis for `(cascade, window)`, replacing any
    /// occupant of the slot — the seeding path of `POST /observe`, which has
    /// just advanced a live cascade's operator incrementally and wants the
    /// next `/predict` on the same content to hit instead of recomputing.
    /// Counted as neither hit nor miss; evicts LRU at capacity like a miss.
    pub fn put(&self, cascade: &Cascade, window: f64, basis: SpectralBasis) {
        if self.capacity == 0 {
            return;
        }
        let key: Key = (cascade_key(cascade), window.to_bits());
        let basis = Arc::new(basis);
        let mut entries = write_recover(&self.entries);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        match entries.binary_search_by_key(&key, |e| e.key) {
            Ok(idx) => {
                let entry = &mut entries[idx];
                if !same_cascade(&entry.cascade, cascade) {
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    entry.cascade = cascade.clone();
                }
                entry.basis = basis;
                entry.last_used.store(now, Ordering::Relaxed);
                entry.warm = false;
            }
            Err(_) => {
                if entries.len() >= self.capacity {
                    if let Some(victim) = (0..entries.len())
                        .min_by_key(|&i| (entries[i].last_used.load(Ordering::Relaxed), entries[i].key))
                    {
                        entries.remove(victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let at = entries
                    .binary_search_by_key(&key, |e| e.key)
                    .unwrap_or_else(|at| at);
                entries.insert(
                    at,
                    Entry {
                        key,
                        cascade: cascade.clone(),
                        basis,
                        last_used: AtomicU64::new(now),
                        warm: false,
                    },
                );
            }
        }
    }

    /// Current counters and an estimate of resident bytes.
    pub fn stats(&self) -> CacheStats {
        let entries = read_recover(&self.entries);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            entries: entries.len(),
            warm_entries: entries.iter().filter(|e| e.warm).count(),
            approx_bytes: entries.iter().map(|e| e.basis.approx_bytes()).sum(),
        }
    }

    /// A point-in-time copy of every resident entry in least-recently-used
    /// order — the snapshot the persistence layer writes to disk. Restoring
    /// the returned sequence through [`seed`](Self::seed) in the same order
    /// reproduces the cache's eviction priority.
    pub fn export(&self) -> Vec<(Cascade, f64, Arc<SpectralBasis>)> {
        let entries = read_recover(&self.entries);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (entries[i].last_used.load(Ordering::Relaxed), entries[i].key));
        order
            .into_iter()
            .map(|i| {
                let e = &entries[i];
                (e.cascade.clone(), f64::from_bits(e.key.1), Arc::clone(&e.basis))
            })
            .collect()
    }

    /// Installs snapshot-restored entries, oldest first, marking each as
    /// warm. Intended for startup, before the cache takes traffic; entries
    /// beyond `capacity` and duplicate keys are dropped (first occurrence
    /// wins). Returns how many entries were installed.
    pub fn seed(&self, restored: Vec<(Cascade, f64, SpectralBasis)>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut entries = write_recover(&self.entries);
        let mut installed = 0usize;
        for (cascade, window, basis) in restored {
            if entries.len() >= self.capacity {
                break;
            }
            let key: Key = (cascade_key(&cascade), window.to_bits());
            let Err(at) = entries.binary_search_by_key(&key, |e| e.key) else {
                continue;
            };
            let now = self.tick.fetch_add(1, Ordering::Relaxed);
            entries.insert(
                at,
                Entry {
                    key,
                    cascade,
                    basis: Arc::new(basis),
                    last_used: AtomicU64::new(now),
                    warm: true,
                },
            );
            installed += 1;
        }
        installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::Event;
    use cascn_tensor::Matrix;

    fn tiny_basis(value: f32) -> SpectralBasis {
        let lap = Matrix::from_fn(2, 2, |r, c| if r == 0 && c == 0 { value } else { 0.0 });
        SpectralBasis::from_laplacian(&lap, Some(2.0), 1)
    }

    /// A one-plus-`extra`-event cascade whose content is a function of `id`.
    fn cas(id: u64, extra: usize) -> Cascade {
        let mut events = vec![Event { user: id, parent: None, time: 0.0 }];
        for i in 1..=extra {
            events.push(Event { user: id + i as u64, parent: Some(0), time: i as f64 });
        }
        Cascade::new(id, 0.0, events)
    }

    #[test]
    fn content_key_separates_same_id_different_events() {
        let a = cas(1, 2);
        let b = cas(1, 3);
        assert_ne!(cascade_key(&a), cascade_key(&b));
        assert_eq!(cascade_key(&a), cascade_key(&a.clone()));
    }

    #[test]
    fn hit_returns_the_cached_allocation() {
        let cache = BasisCache::new(4);
        let c = cas(7, 0);
        let a = cache.get_or_insert_with(&c, 25.0, || tiny_basis(1.0));
        let b = cache.get_or_insert_with(&c, 25.0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.approx_bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_bits_distinguish_entries() {
        let cache = BasisCache::new(4);
        let c = cas(7, 0);
        let _ = cache.get_or_insert_with(&c, 25.0, || tiny_basis(1.0));
        let _ = cache.get_or_insert_with(&c, 26.0, || tiny_basis(2.0));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = BasisCache::new(2);
        let (c1, c2, c3) = (cas(1, 0), cas(2, 0), cas(3, 0));
        let _ = cache.get_or_insert_with(&c1, 1.0, || tiny_basis(1.0));
        let _ = cache.get_or_insert_with(&c2, 1.0, || tiny_basis(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = cache.get_or_insert_with(&c1, 1.0, || panic!("cached"));
        let _ = cache.get_or_insert_with(&c3, 1.0, || tiny_basis(3.0));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // 1 survived, 2 was evicted.
        let _ = cache.get_or_insert_with(&c1, 1.0, || panic!("1 must survive"));
        let mut recomputed = false;
        let _ = cache.get_or_insert_with(&c2, 1.0, || {
            recomputed = true;
            tiny_basis(2.0)
        });
        assert!(recomputed, "2 was evicted and must recompute");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = BasisCache::new(0);
        let c = cas(1, 0);
        let mut calls = 0;
        for _ in 0..3 {
            let _ = cache.get_or_insert_with(&c, 1.0, || {
                calls += 1;
                tiny_basis(1.0)
            });
        }
        assert_eq!(calls, 3);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 0));
    }

    #[test]
    fn export_and_seed_round_trip_preserves_content_and_lru_order() {
        let cache = BasisCache::new(4);
        let (c1, c2, c3) = (cas(1, 1), cas(2, 2), cas(3, 3));
        let _ = cache.get_or_insert_with(&c1, 1.0, || tiny_basis(1.0));
        let _ = cache.get_or_insert_with(&c2, 1.0, || tiny_basis(2.0));
        let _ = cache.get_or_insert_with(&c3, 1.0, || tiny_basis(3.0));
        // Touch 1 so the LRU order becomes 2, 3, 1.
        let _ = cache.get_or_insert_with(&c1, 1.0, || panic!("cached"));
        let exported = cache.export();
        let ids: Vec<u64> = exported.iter().map(|(c, _, _)| c.id).collect();
        assert_eq!(ids, vec![2, 3, 1], "export is LRU order, oldest first");

        let restored = BasisCache::new(2);
        let installed = restored.seed(
            exported
                .iter()
                .map(|(c, w, b)| (c.clone(), *w, (**b).clone()))
                .collect(),
        );
        assert_eq!(installed, 2, "seed respects the new capacity");
        let s = restored.stats();
        assert_eq!((s.entries, s.warm_entries), (2, 2));
        // The restored entries hit without recomputing, and count as warm.
        let _ = restored.get_or_insert_with(&c2, 1.0, || panic!("warm entry"));
        assert_eq!(restored.stats().warm_hits, 1);
        // A recomputed slot loses its warm flag.
        let _ = restored.get_or_insert_with(&cas(9, 1), 1.0, || tiny_basis(9.0));
    }

    #[test]
    fn put_seeds_the_slot_a_later_lookup_hits() {
        let cache = BasisCache::new(2);
        let c = cas(4, 2);
        cache.put(&c, 25.0, tiny_basis(4.0));
        let got = cache.get_or_insert_with(&c, 25.0, || panic!("seeded entry must hit"));
        assert_eq!(got.lambda_max, 2.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
        // Re-putting the same key replaces the basis in place.
        cache.put(&c, 25.0, tiny_basis(5.0));
        assert_eq!(cache.stats().entries, 1);
        // Puts respect capacity with LRU eviction.
        cache.put(&cas(5, 1), 25.0, tiny_basis(5.0));
        cache.put(&cas(6, 1), 25.0, tiny_basis(6.0));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // Zero capacity: put is a no-op.
        let off = BasisCache::new(0);
        off.put(&c, 25.0, tiny_basis(1.0));
        assert_eq!(off.stats().entries, 0);
    }

    #[test]
    fn seeding_a_zero_capacity_cache_is_a_no_op() {
        let cache = BasisCache::new(0);
        let c = cas(1, 0);
        let basis = tiny_basis(1.0);
        assert_eq!(cache.seed(vec![(c, 1.0, basis)]), 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn fingerprint_collisions_never_share_a_basis() {
        let cache = BasisCache::new(4);
        let (a, b) = (cas(1, 1), cas(2, 2));
        // Force both cascades onto one slot, as a forged FNV collision
        // (or a chance one at scale) would.
        let key: Key = (42, 1.0f64.to_bits());
        let first = cache.get_or_insert_keyed(key, &a, || tiny_basis(1.0));
        let second = cache.get_or_insert_keyed(key, &b, || tiny_basis(2.0));
        assert!(!Arc::ptr_eq(&first, &second), "colliding cascades must not alias");
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!((s.hits, s.misses), (0, 2), "a collision is a miss, not a hit");
        assert_eq!(s.entries, 1, "collisions replace the slot, never duplicate it");
        // The last writer owns the slot: `b` now hits, `a` recomputes.
        let again = cache.get_or_insert_keyed(key, &b, || panic!("b owns the slot"));
        assert!(Arc::ptr_eq(&second, &again));
        let mut recomputed = false;
        let _ = cache.get_or_insert_keyed(key, &a, || {
            recomputed = true;
            tiny_basis(1.0)
        });
        assert!(recomputed, "a was displaced and must recompute");
        assert_eq!(cache.stats().collisions, 2);
    }
}
