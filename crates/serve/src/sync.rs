//! Poison-tolerant lock acquisition, in one place.
//!
//! Every lock in this crate protects state that stays structurally valid
//! even if a holder panicked mid-update: queues of owned jobs, `Option<Child>`
//! slots, LRU vectors whose entries are immutable once published. Recovering
//! the guard from a [`PoisonError`] is therefore always safe here, and the
//! serving tier must keep running after a worker panic rather than cascade
//! the poison to every thread that touches the same mutex.
//!
//! These helpers are also the canonical guard-acquisition shape that
//! `cascn-lint`'s concurrency passes key on (see `docs/static-analysis.md`):
//! `lock_recover(&self.queue)` names the lock it acquires in its argument,
//! which makes lock identities resolvable by a token-level analyzer. Prefer
//! them over open-coded `lock().unwrap_or_else(|e| e.into_inner())`.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Acquires a shared read guard on `l`, recovering from poison.
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquires an exclusive write guard on `l`, recovering from poison.
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Blocks on `cv`, releasing `guard` while parked, recovering from poison.
///
/// Callers must re-check their predicate after this returns: condition
/// variables wake spuriously (`cascn-lint` enforces this via `wait-loop`).
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // lint: allow(wait-loop) — this IS the wait primitive; the predicate-loop obligation transfers to callers, where the pass checks it
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Like [`wait_recover`] with an upper bound on the park time. The bool is
/// `true` when the wait timed out rather than being notified.
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    let (guard, res) = cv
        // lint: allow(wait-loop) — the wait primitive itself; callers own the predicate loop and the pass checks them
        .wait_timeout(guard, timeout)
        .unwrap_or_else(|e| e.into_inner());
    (guard, res.timed_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_recover(&m), 7);
    }

    #[test]
    fn rwlock_recover_survives_poison() {
        let l = Arc::new(RwLock::new(3u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_recover(&l), 3);
        *write_recover(&l) = 4;
        assert_eq!(*read_recover(&l), 4);
    }

    #[test]
    fn wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = lock_recover(&m);
        let (_g, timed_out) = wait_timeout_recover(&cv, g, Duration::from_millis(1));
        assert!(timed_out);
    }
}
