//! `cascn-router` — a self-healing front door for a tier of `cascn-serve`
//! replicas.
//!
//! Two modes:
//!
//! **Supervised tier** (`--replicas N --replica-cmd BIN --replica-arg X ...`):
//! the router spawns N replica processes itself, supervises them (health
//! probes, circuit breaking, crash restarts with capped backoff), and
//! routes over them. Replica addresses are discovered from each child's
//! `listening on ADDR` stdout line; pass `--addr 127.0.0.1:0` in the
//! replica args so every replica binds its own ephemeral port. Append
//! `{i}` inside a replica arg to substitute the replica index — e.g.
//! `--replica-arg --snapshot --replica-arg /tmp/cache-{i}.snap` gives
//! each replica its own snapshot file.
//!
//! **External backends** (`--backend HOST:PORT` repeated): route over
//! replicas someone else manages; the router probes and ejects but never
//! spawns or restarts.
//!
//! ```text
//! cascn-router --addr 127.0.0.1:8070 \
//!   --replicas 3 --replica-cmd target/release/cascn-serve \
//!   --replica-arg --model --replica-arg model.ckpt \
//!   --replica-arg --addr  --replica-arg 127.0.0.1:0 \
//!   --replica-arg --snapshot --replica-arg /tmp/spectral-{i}.snap
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use cascn_cascades::stream::StreamLimits;
use cascn_serve::router::{ReplicaSet, Router, RouterConfig};
use cascn_serve::supervisor::{ReplicaCommand, Supervisor, SupervisorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage_and_exit();
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "cascn-router — failover router + replica supervisor for cascn-serve\n\n\
         USAGE:\n  cascn-router [--addr HOST:PORT] (--backend HOST:PORT ... | \\\n    \
         --replicas N --replica-cmd BIN [--replica-arg ARG ...])\n\n\
         TIER:\n\
         --backend HOST:PORT: externally managed replica (repeatable)\n\
         --replicas N: number of supervised replicas to spawn\n\
         --replica-cmd BIN: replica binary (default: cascn-serve)\n\
         --replica-arg ARG: argument passed to every replica, in order;\n    \
         `{{i}}` inside an arg becomes the replica index (repeatable)\n\n\
         ROUTING:\n\
         --deadline-ms N: total budget per routed request (default 2000)\n\
         --max-attempts N: backend attempts per request (default 3)\n\
         --backoff-base-ms / --backoff-cap-ms: retry backoff (default 10/200)\n\
         --connect-timeout-ms N: per-attempt connect budget (default 250)\n\
         --failure-threshold N: consecutive failures before eject (default 3)\n\
         --probe-interval-ms N: /healthz cadence (default 250)\n\
         --restart-backoff-ms / --restart-backoff-cap-ms: supervisor restart\n    \
         delays (default 100/5000)\n\
         --workers N / --max-body-bytes N / --read-timeout-ms N / --seed S\n\n\
         ROUTES:\n  GET /healthz   GET /metrics\n  \
         POST /predict?window=SECS   (body: cascade text format)\n  \
         POST /reload   POST /snapshot   (fan out to all replicas)\n  \
         POST /shutdown"
    );
    exit(2);
}

/// `--flag value` pairs, with repeatable flags kept in order.
struct Flags {
    named: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut named = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                named.push((name.to_string(), value));
            }
        }
        Self { named }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<String> {
        self.named
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .collect()
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name} `{v}`")),
        }
    }
}

fn millis(flags: &Flags, name: &str, default: u64) -> Result<Duration, String> {
    Ok(Duration::from_millis(flags.parse_or(name, default)?))
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args);
    let backends = flags.get_all("backend");
    let replica_count: usize = flags.parse_or("replicas", 0)?;
    if backends.is_empty() && replica_count == 0 {
        return Err("need --backend HOST:PORT or --replicas N (see --help)".into());
    }
    if !backends.is_empty() && replica_count > 0 {
        return Err("--backend and --replicas are mutually exclusive".into());
    }

    let config = RouterConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:8070").to_string(),
        workers: flags.parse_or("workers", 0)?,
        max_body_bytes: flags.parse_or("max-body-bytes", 1 << 20)?,
        read_timeout: match flags.parse_or("read-timeout-ms", 5_000u64)? {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        deadline: millis(&flags, "deadline-ms", 2_000)?,
        max_attempts: flags.parse_or("max-attempts", 3usize)?.max(1),
        backoff_base: millis(&flags, "backoff-base-ms", 10)?,
        backoff_cap: millis(&flags, "backoff-cap-ms", 200)?,
        connect_timeout: millis(&flags, "connect-timeout-ms", 250)?,
        probe_interval: millis(&flags, "probe-interval-ms", 250)?,
        probe_timeout: millis(&flags, "probe-timeout-ms", 500)?,
        failure_threshold: flags.parse_or("failure-threshold", 3u32)?.max(1),
        limits: StreamLimits {
            max_cascades: flags.parse_or("max-cascades", 64)?,
            max_events: flags.parse_or("max-events", 10_000)?,
        },
        seed: flags.parse_or("seed", 42u64)?,
    };

    let failure_threshold = config.failure_threshold;
    let replicas = if backends.is_empty() {
        Arc::new(ReplicaSet::new(replica_count, failure_threshold))
    } else {
        Arc::new(ReplicaSet::with_backends(&backends, failure_threshold))
    };

    let router = Router::bind(config, Arc::clone(&replicas)).map_err(|e| e.to_string())?;
    let metrics = Arc::clone(&router.metrics);

    let supervisor = if replica_count > 0 {
        let program = flags.get("replica-cmd").unwrap_or("cascn-serve").to_string();
        let template = flags.get_all("replica-arg");
        let commands = (0..replica_count)
            .map(|i| ReplicaCommand {
                program: program.clone(),
                args: template
                    .iter()
                    .map(|a| a.replace("{i}", &i.to_string()))
                    .collect(),
            })
            .collect();
        let sup_config = SupervisorConfig {
            backoff_base: millis(&flags, "restart-backoff-ms", 100)?,
            backoff_cap: millis(&flags, "restart-backoff-cap-ms", 5_000)?,
            ..SupervisorConfig::default()
        };
        Some(Supervisor::start(commands, sup_config, replicas, metrics))
    } else {
        None
    };

    // Same stdout contract as cascn-serve: smoke scripts discover the
    // router's ephemeral port from this exact line shape.
    println!("listening on {}", router.local_addr());
    let result = router.run().map_err(|e| e.to_string());
    if let Some(sup) = supervisor {
        sup.stop();
    }
    result
}
