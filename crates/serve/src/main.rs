//! `cascn-serve` — serve a trained CasCN checkpoint over HTTP.
//!
//! ```text
//! cascn-serve --model model.ckpt --addr 127.0.0.1:8077 --window 3600
//! curl -s -X POST --data-binary @cascades.txt \
//!     'http://127.0.0.1:8077/predict?window=3600'
//! ```
//!
//! The architecture flags (`--hidden`, `--max-nodes`, …) must match the
//! ones the checkpoint was trained with — the registry rejects mismatched
//! shapes at startup. Defaults mirror `cascn train`.

use std::process::exit;

use cascn::CascnConfig;
use cascn_cascades::stream::StreamLimits;
use cascn_serve::{ModelRegistry, Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage_and_exit();
    }
    if let Err(e) = run(&Flags::parse(&args)) {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "cascn-serve — CasCN inference server\n\n\
         USAGE:\n  cascn-serve --model CKPT [--addr HOST:PORT] [--window SECS]\n    \
         [--task size|next-user --vocab-users N]\n    \
         [--hidden H] [--max-nodes N] [--max-steps N] [--seed S]\n    \
         [--workers N] [--threads N] [--max-batch N] [--max-queue N]\n    \
         [--max-body-bytes N] [--cache-capacity N] [--live-capacity N]\n    \
         [--read-timeout-ms N] [--snapshot PATH] [--snapshot-interval-ms N]\n\n\
         --model CKPT: a `cascn train --checkpoint` v2 file\n\
         --task next-user: serve POST /predict_next from a checkpoint written\n    \
         by `cascn train --task next-user` (requires --vocab-users to match)\n\
         --addr: bind address (default 127.0.0.1:8077; port 0 = ephemeral)\n\
         --window: default prediction window when a request has no ?window=\n\
         --workers/--threads: connection workers / forward-pass fan-out (0 = all cores)\n\
         --max-batch/--max-queue: micro-batch size / shed bound, in cascades\n\
         --live-capacity: resident streaming cascades for POST /observe (default 256; 0 = disabled)\n\
         --read-timeout-ms: slow/idle connections get 408 after this (default 5000; 0 = never)\n\
         --snapshot: spectral-cache snapshot file; warm-start from it at boot,\n    \
         save on POST /snapshot and at shutdown (corrupt file = cold start)\n\
         --snapshot-interval-ms: also save on this cadence (0 = on demand only)\n\n\
         ROUTES:\n  GET /healthz   GET /metrics\n  \
         POST /predict?window=SECS   (body: cascade text format)\n  \
         POST /predict_next?window=SECS&k=K   (next-user checkpoints only)\n  \
         POST /observe?window=SECS   (body: single-cascade suffix of adoption events)\n  \
         POST /reload   POST /snapshot   POST /shutdown"
    );
    exit(2);
}

/// Minimal `--flag value` parser, same shape as the `cascn` CLI's.
struct Flags {
    named: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut named = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                named.push((name.to_string(), value));
            }
        }
        Self { named }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name} `{v}`")),
        }
    }
}

fn run(flags: &Flags) -> Result<(), String> {
    let model_path = flags.require("model")?;
    let hidden: usize = flags.parse_or("hidden", 16)?;
    let threads: usize = flags.parse_or("threads", 0)?;
    let task = match flags.get("task") {
        None => cascn::TaskKind::SizeRegression,
        Some(name) => cascn::TaskKind::parse(name)
            .ok_or_else(|| format!("unknown --task `{name}` (size|next-user)"))?,
    };
    let vocab_users: usize = flags.parse_or("vocab-users", 0)?;
    if task == cascn::TaskKind::NextUser && vocab_users == 0 {
        return Err("--task next-user requires --vocab-users N (the value printed by `cascn train`)".into());
    }
    let cfg = CascnConfig {
        hidden,
        mlp_hidden: hidden,
        max_nodes: flags.parse_or("max-nodes", 30)?,
        max_steps: flags.parse_or("max-steps", 10)?,
        seed: flags.parse_or("seed", 42)?,
        threads,
        task,
        vocab_users,
        ..CascnConfig::default()
    };
    let config = ServerConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:8077").to_string(),
        workers: flags.parse_or("workers", 0)?,
        threads,
        max_batch: flags.parse_or("max-batch", 64)?,
        max_queue: flags.parse_or("max-queue", 256)?,
        max_body_bytes: flags.parse_or("max-body-bytes", 1 << 20)?,
        cache_capacity: flags.parse_or("cache-capacity", 1024)?,
        live_capacity: flags.parse_or("live-capacity", 256)?,
        default_window: flags.parse_or("window", 25.0)?,
        read_timeout: match flags.parse_or("read-timeout-ms", 5_000u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        limits: StreamLimits {
            max_cascades: flags.parse_or("max-cascades", 64)?,
            max_events: flags.parse_or("max-events", 10_000)?,
        },
        snapshot_path: flags.get("snapshot").map(std::path::PathBuf::from),
        snapshot_interval: match flags.parse_or("snapshot-interval-ms", 0u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
    };

    let registry = ModelRegistry::open(model_path, cfg)
        .map_err(|e| format!("loading {model_path}: {e}"))?;
    let server = Server::bind(config, registry).map_err(|e| e.to_string())?;
    // The smoke test and loadgen parse this line to discover an ephemeral
    // port, so its shape is part of the crate's contract.
    println!("listening on {}", server.local_addr());
    server.run().map_err(|e| e.to_string())
}
