//! `cascn-serve` — a dependency-free inference server for trained CasCN
//! checkpoints.
//!
//! The training side of this workspace produces [`cascn::TrainCheckpoint`]
//! v2 files; this crate turns one into an HTTP service with the same
//! determinism contract as offline evaluation: for a given checkpoint,
//! a served prediction is bit-identical to `CascnModel::predict_log` on
//! the same cascade and window, for any worker count, batch mix, or cache
//! state.
//!
//! Architecture (one request's path through the crate):
//!
//! ```text
//! TcpListener ── bounded conn queue ── worker pool      (server.rs, http.rs)
//!                                        │ parse body   (cascn_cascades::stream)
//!                                        ▼
//!                                  bounded job queue    (batch.rs)
//!                                        │ coalesce
//!                                        ▼
//!                                  batch executor ── spectral cache (cache.rs)
//!                                        │              │
//!                                        │        model registry    (registry.rs)
//!                                        ▼
//!                                  parallel_map forward pass
//!                                        │
//!                                  response slots → workers → sockets
//! ```
//!
//! For more than one replica, `cascn-router` (router.rs, supervisor.rs)
//! fronts a tier of these servers: rendezvous-hashed cache-affinity
//! routing with deadlines, retries and failover, health probes with a
//! circuit breaker per replica, and an optional supervisor that spawns
//! and restarts replica processes with capped backoff. The spectral
//! cache survives replica crashes via checksummed atomic snapshots
//! (persist.rs) — see `docs/serving.md` § "Fleet & failure handling".
//!
//! Everything is `std`-only, matching the workspace's no-external-deps
//! policy; concurrency is scoped threads, mutexes, and condvars.
//!
//! See `docs/serving.md` for the operational guide.

pub mod batch;
pub mod cache;
pub mod http;
pub mod live;
pub mod metrics;
pub mod persist;
pub mod registry;
pub mod router;
pub mod server;
pub mod supervisor;
pub mod sync;

pub use batch::{Batcher, EnqueueError, JobKind, PredictJob, PredictOutput, ResponseSlot};
pub use cache::{BasisCache, CacheStats};
pub use live::{LiveRegistry, LiveStats, ObserveError, ObserveOutcome};
pub use metrics::{RouterMetrics, ServeMetrics};
pub use persist::{basis_fingerprint, load_snapshot, save_snapshot, SnapshotError};
pub use registry::{LoadedModel, ModelRegistry};
pub use router::{
    observe_fingerprint, ReplicaSet, ReplicaState, ReplicaView, Router, RouterConfig,
};
pub use server::{Server, ServerConfig};
pub use supervisor::{ReplicaCommand, Supervisor, SupervisorConfig};
pub use sync::{lock_recover, read_recover, wait_recover, wait_timeout_recover, write_recover};
