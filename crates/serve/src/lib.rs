//! `cascn-serve` — a dependency-free inference server for trained CasCN
//! checkpoints.
//!
//! The training side of this workspace produces [`cascn::TrainCheckpoint`]
//! v2 files; this crate turns one into an HTTP service with the same
//! determinism contract as offline evaluation: for a given checkpoint,
//! a served prediction is bit-identical to `CascnModel::predict_log` on
//! the same cascade and window, for any worker count, batch mix, or cache
//! state.
//!
//! Architecture (one request's path through the crate):
//!
//! ```text
//! TcpListener ── bounded conn queue ── worker pool      (server.rs, http.rs)
//!                                        │ parse body   (cascn_cascades::stream)
//!                                        ▼
//!                                  bounded job queue    (batch.rs)
//!                                        │ coalesce
//!                                        ▼
//!                                  batch executor ── spectral cache (cache.rs)
//!                                        │              │
//!                                        │        model registry    (registry.rs)
//!                                        ▼
//!                                  parallel_map forward pass
//!                                        │
//!                                  response slots → workers → sockets
//! ```
//!
//! Everything is `std`-only, matching the workspace's no-external-deps
//! policy; concurrency is scoped threads, mutexes, and condvars.
//!
//! See `docs/serving.md` for the operational guide.

pub mod batch;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batch::{Batcher, EnqueueError, PredictJob, ResponseSlot};
pub use cache::{BasisCache, CacheStats};
pub use metrics::ServeMetrics;
pub use registry::{LoadedModel, ModelRegistry};
pub use server::{Server, ServerConfig};
