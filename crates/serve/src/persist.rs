//! Crash-recoverable persistence for the spectral cache.
//!
//! A replica that dies — `kill -9`, OOM, power loss — loses its warm
//! [`BasisCache`](crate::BasisCache) and pays the full spectral recompute
//! cost for every request after restart. This module snapshots the cache
//! to disk so a restarted replica warm-starts instead:
//!
//! - **Format** — plain text, one versioned header, a basis fingerprint of
//!   the config fields that shape a spectral basis, the entries in LRU
//!   order (oldest first), and an FNV-1a 64 checksum footer — the same
//!   integrity scheme as training checkpoints. Floats are written with
//!   `{:?}` (shortest round-trip), so a restore is **bit-identical** to
//!   the in-memory cache it came from.
//! - **Atomicity** — writes go through [`atomic_write`] (temp file in the
//!   same directory + rename), so a crash mid-save leaves the previous
//!   snapshot intact, never a torn file.
//! - **Rejection is always a cold start, never a panic** — a truncated
//!   file, a flipped bit, an unknown version, or a snapshot written under
//!   a different basis-shaping config all load as a structured
//!   [`SnapshotError`]; the server logs it, starts cold, and overwrites
//!   the bad snapshot on the next save. A stale or foreign basis can never
//!   be served.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use cascn::{atomic_write, fnv1a64, CascnConfig, LambdaMax, LaplacianKind};
use cascn_cascades::{Cascade, Event};
use cascn_graph::SpectralBasis;
use cascn_tensor::Matrix;

/// First line of every snapshot file.
pub const SNAPSHOT_HEADER: &str = "# cascn spectral cache snapshot v1";
const CHECKSUM_PREFIX: &str = "# checksum fnv1a64 ";

/// One restored cache entry: the cascade, its window, and the basis.
pub type SnapshotEntry = (Cascade, f64, SpectralBasis);

/// Why a snapshot was rejected. Every variant cold-starts the cache; none
/// of them is a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The checksum footer is missing — the file was cut short mid-write.
    Truncated,
    /// The footer is present but does not match the body — bit rot or a
    /// partial overwrite.
    ChecksumMismatch,
    /// The header names a version this build does not read.
    VersionSkew(String),
    /// The snapshot was written under different basis-shaping config
    /// (Chebyshev order, node cap, α, λ_max/Laplacian strategy) — its
    /// bases would be stale for this server, so it is refused wholesale.
    FingerprintMismatch { found: u64, expected: u64 },
    /// Structurally invalid content inside a checksum-valid file.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated (no checksum footer)"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::VersionSkew(header) => {
                write!(f, "unrecognized snapshot header `{header}` (expected `{SNAPSHOT_HEADER}`)")
            }
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot basis fingerprint {found:016x} does not match this server's {expected:016x}"
            ),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

/// Fingerprint of the config fields a [`SpectralBasis`] depends on. Two
/// servers agree on this exactly when `spectral_basis` would produce the
/// same bases for the same cascade — model *parameters* are deliberately
/// excluded (the basis is parameter-independent and survives hot reloads).
pub fn basis_fingerprint(cfg: &CascnConfig) -> u64 {
    let mut bytes = Vec::with_capacity(40);
    bytes.extend_from_slice(&(cfg.k as u64).to_le_bytes());
    bytes.extend_from_slice(&(cfg.max_nodes as u64).to_le_bytes());
    bytes.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    bytes.push(match cfg.lambda_max {
        LambdaMax::Exact => 0,
        LambdaMax::Approx2 => 1,
    });
    bytes.push(match cfg.laplacian {
        LaplacianKind::Directed => 0,
        LaplacianKind::Undirected => 1,
    });
    fnv1a64(&bytes)
}

/// Serializes exported cache entries into snapshot text, footer included.
pub fn snapshot_to_text(entries: &[(Cascade, f64, Arc<SpectralBasis>)], basis_fp: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + entries.len() * 512);
    let _ = writeln!(out, "{SNAPSHOT_HEADER}");
    let _ = writeln!(out, "basis_fp {basis_fp:016x}");
    let _ = writeln!(out, "entries {}", entries.len());
    for (cascade, window, basis) in entries {
        let _ = writeln!(out, "entry {:016x}", window.to_bits());
        let _ = writeln!(out, "cascade {} {:?} {}", cascade.id, cascade.start_time, cascade.events.len());
        for e in &cascade.events {
            let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            let _ = writeln!(out, "event {} {parent} {:?}", e.user, e.time);
        }
        let n = basis.scaled.rows();
        let _ = writeln!(out, "basis {:?} {n} {}", basis.lambda_max, basis.bases.len());
        write_matrix(&mut out, &basis.scaled);
        for t in &basis.bases {
            write_matrix(&mut out, t);
        }
    }
    let checksum = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "{CHECKSUM_PREFIX}{checksum:016x}");
    out
}

/// Atomically writes a snapshot of `entries` to `path`.
pub fn save_snapshot(
    path: &Path,
    entries: &[(Cascade, f64, Arc<SpectralBasis>)],
    basis_fp: u64,
) -> std::io::Result<()> {
    atomic_write(path, snapshot_to_text(entries, basis_fp).as_bytes())
}

/// Parses snapshot text, verifying the checksum footer *first* and then
/// the version header and basis fingerprint, so no corrupt or foreign
/// content is ever interpreted as cache state.
pub fn snapshot_from_text(text: &str, expected_fp: u64) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    let body = verify_checksum(text)?;
    let mut lines = body.lines();
    let header = lines.next().unwrap_or_default();
    if header.trim() != SNAPSHOT_HEADER {
        return Err(SnapshotError::VersionSkew(header.trim().to_string()));
    }
    let found_fp = match lines.next().and_then(|l| l.strip_prefix("basis_fp ")) {
        Some(hex) => u64::from_str_radix(hex.trim(), 16)
            .map_err(|_| SnapshotError::Malformed(format!("bad basis_fp `{hex}`")))?,
        None => return Err(SnapshotError::Malformed("missing basis_fp line".into())),
    };
    if found_fp != expected_fp {
        return Err(SnapshotError::FingerprintMismatch { found: found_fp, expected: expected_fp });
    }
    let count: usize = match lines.next().and_then(|l| l.strip_prefix("entries ")) {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| SnapshotError::Malformed(format!("bad entries count `{n}`")))?,
        None => return Err(SnapshotError::Malformed("missing entries line".into())),
    };

    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(read_entry(&mut lines).map_err(|m| {
            SnapshotError::Malformed(format!("entry {i}: {m}"))
        })?);
    }
    if lines.next().is_some() {
        return Err(SnapshotError::Malformed("trailing content after last entry".into()));
    }
    Ok(out)
}

/// Loads a snapshot file. `Ok(None)` means the file does not exist (a
/// routine cold start); every other failure is a [`SnapshotError`].
pub fn load_snapshot(
    path: &Path,
    expected_fp: u64,
) -> Result<Option<Vec<SnapshotEntry>>, SnapshotError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Malformed(format!("read {}: {e}", path.display()))),
    };
    snapshot_from_text(&text, expected_fp).map(Some)
}

fn verify_checksum(text: &str) -> Result<&str, SnapshotError> {
    let tail = text.trim_end_matches(['\r', '\n']);
    let footer_start = match tail.rfind('\n') {
        Some(i) => i + 1,
        None => return Err(SnapshotError::Truncated),
    };
    let footer = &tail[footer_start..];
    let Some(hex) = footer.strip_prefix(CHECKSUM_PREFIX) else {
        return Err(SnapshotError::Truncated);
    };
    let declared =
        u64::from_str_radix(hex.trim(), 16).map_err(|_| SnapshotError::Truncated)?;
    // The checksum covers every byte of the body as written, including the
    // newline that precedes the footer line.
    let body = &text[..footer_start];
    if fnv1a64(body.as_bytes()) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(body)
}

fn write_matrix(out: &mut String, m: &Matrix) {
    use std::fmt::Write as _;
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|x| format!("{x:?}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
}

fn read_entry<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<SnapshotEntry, String> {
    let entry_line = lines.next().ok_or("missing entry line")?;
    let window_bits = entry_line
        .strip_prefix("entry ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| format!("bad entry line `{entry_line}`"))?;
    let window = f64::from_bits(window_bits);

    let cas_line = lines.next().ok_or("missing cascade line")?;
    let toks: Vec<&str> = cas_line.split_whitespace().collect();
    let (id, start_time, n_events): (u64, f64, usize) = match toks.as_slice() {
        ["cascade", id, start, n] => (
            id.parse().map_err(|_| format!("bad cascade id `{id}`"))?,
            start.parse().map_err(|_| format!("bad start time `{start}`"))?,
            n.parse().map_err(|_| format!("bad event count `{n}`"))?,
        ),
        _ => return Err(format!("bad cascade line `{cas_line}`")),
    };
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let line = lines.next().ok_or("missing event line")?;
        let t: Vec<&str> = line.split_whitespace().collect();
        let ["event", user, parent, time] = t.as_slice() else {
            return Err(format!("bad event line `{line}`"));
        };
        events.push(Event {
            user: user.parse().map_err(|_| format!("bad user `{user}`"))?,
            parent: match *parent {
                "-" => None,
                p => Some(p.parse().map_err(|_| format!("bad parent `{p}`"))?),
            },
            time: time.parse().map_err(|_| format!("bad time `{time}`"))?,
        });
    }
    // A checksum-valid snapshot written by this code always carries valid
    // cascades, but the fallible constructor keeps even a hand-crafted
    // file from panicking the server.
    let cascade = Cascade::try_new(id, start_time, events)
        .map_err(|fault| format!("invalid cascade {id}: {fault}"))?;

    let basis_line = lines.next().ok_or("missing basis line")?;
    let t: Vec<&str> = basis_line.split_whitespace().collect();
    let (lambda_max, n, n_bases): (f32, usize, usize) = match t.as_slice() {
        ["basis", l, n, b] => (
            l.parse().map_err(|_| format!("bad lambda_max `{l}`"))?,
            n.parse().map_err(|_| format!("bad node count `{n}`"))?,
            b.parse().map_err(|_| format!("bad basis count `{b}`"))?,
        ),
        _ => return Err(format!("bad basis line `{basis_line}`")),
    };
    let scaled = read_matrix(lines, n)?;
    let mut bases = Vec::with_capacity(n_bases);
    for _ in 0..n_bases {
        bases.push(read_matrix(lines, n)?);
    }
    Ok((cascade, window, SpectralBasis { lambda_max, scaled, bases }))
}

fn read_matrix<'a>(lines: &mut impl Iterator<Item = &'a str>, n: usize) -> Result<Matrix, String> {
    let mut data = Vec::with_capacity(n * n);
    for r in 0..n {
        let line = lines.next().ok_or_else(|| format!("missing matrix row {r}"))?;
        let before = data.len();
        for tok in line.split_whitespace() {
            data.push(tok.parse::<f32>().map_err(|_| format!("bad float `{tok}`"))?);
        }
        if data.len() - before != n {
            return Err(format!("matrix row {r} has {} values, expected {n}", data.len() - before));
        }
    }
    Ok(Matrix::from_vec(n, n, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_graph::SpectralBasis;

    use crate::cache::BasisCache;

    fn cfg() -> CascnConfig {
        CascnConfig { max_nodes: 10, max_steps: 4, ..CascnConfig::default() }
    }

    fn cas(id: u64, extra: usize) -> Cascade {
        let mut events = vec![Event { user: id, parent: None, time: 0.0 }];
        for i in 1..=extra {
            events.push(Event { user: id + i as u64, parent: Some(0), time: i as f64 });
        }
        Cascade::new(id, 0.0, events)
    }

    /// A cache warmed with real spectral bases for a few cascades.
    fn warmed_cache() -> (BasisCache, Vec<Cascade>) {
        let cache = BasisCache::new(8);
        let cascades: Vec<Cascade> = (1..=3).map(|i| cas(i, i as usize + 1)).collect();
        for c in &cascades {
            let _ = cache.get_or_insert_with(c, 25.0, || cascn::spectral_basis(c, 25.0, &cfg()));
        }
        (cache, cascades)
    }

    #[test]
    fn round_trip_is_bit_identical_to_the_in_memory_lru() {
        let (cache, cascades) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let exported = cache.export();
        let text = snapshot_to_text(&exported, fp);
        let restored = snapshot_from_text(&text, fp).expect("clean snapshot loads");
        assert_eq!(restored.len(), cascades.len());
        for ((c0, w0, b0), (c1, w1, b1)) in exported.iter().zip(&restored) {
            assert_eq!(c0.id, c1.id);
            assert_eq!(c0.start_time.to_bits(), c1.start_time.to_bits());
            assert_eq!(c0.events.len(), c1.events.len());
            assert_eq!(w0.to_bits(), w1.to_bits());
            assert_eq!(b0.lambda_max.to_bits(), b1.lambda_max.to_bits());
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&b0.scaled), bits(&b1.scaled), "scaled Laplacian round-trips exactly");
            assert_eq!(b0.bases.len(), b1.bases.len());
            for (t0, t1) in b0.bases.iter().zip(&b1.bases) {
                assert_eq!(bits(t0), bits(t1), "Chebyshev basis round-trips exactly");
            }
        }
        // Seeding a fresh cache with the restored entries serves hits
        // without recomputation — the warm-start contract.
        let fresh = BasisCache::new(8);
        assert_eq!(fresh.seed(restored), cascades.len());
        for c in &cascades {
            let _ = fresh.get_or_insert_with(c, 25.0, || panic!("restored entry must hit"));
        }
        assert_eq!(fresh.stats().warm_hits as usize, cascades.len());
    }

    #[test]
    fn non_finite_floats_survive_the_text_format() {
        let scaled = Matrix::from_vec(1, 1, vec![f32::NAN]);
        let bases = vec![Matrix::from_vec(1, 1, vec![f32::INFINITY]), Matrix::from_vec(1, 1, vec![f32::NEG_INFINITY])];
        let basis = SpectralBasis { lambda_max: 2.0, scaled, bases };
        let entries = vec![(cas(1, 0), 25.0, Arc::new(basis))];
        let text = snapshot_to_text(&entries, 7);
        let restored = snapshot_from_text(&text, 7).expect("loads");
        assert!(restored[0].2.scaled.as_slice()[0].is_nan());
        assert_eq!(restored[0].2.bases[0].as_slice()[0], f32::INFINITY);
        assert_eq!(restored[0].2.bases[1].as_slice()[0], f32::NEG_INFINITY);
    }

    #[test]
    fn truncated_snapshot_cold_starts() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), fp);
        // Every truncation point must fail cleanly — never panic, never
        // produce entries.
        for keep in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let cut = &text[..keep];
            let err = snapshot_from_text(cut, fp).expect_err("truncation must be rejected");
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
                "cut at {keep}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), fp);
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        assert_eq!(
            snapshot_from_text(&corrupted, fp).expect_err("bit flip rejected"),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn version_skew_is_rejected_before_any_entry_parses() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), fp);
        let skewed = text.replace("snapshot v1", "snapshot v9");
        // Re-checksum so only the version differs.
        let body_end = skewed.rfind(CHECKSUM_PREFIX).unwrap();
        let body = &skewed[..body_end];
        let refooted = format!("{body}{CHECKSUM_PREFIX}{:016x}\n", cascn::fnv1a64(body.as_bytes()));
        match snapshot_from_text(&refooted, fp) {
            Err(SnapshotError::VersionSkew(h)) => assert!(h.contains("v9"), "{h}"),
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn foreign_basis_fingerprint_is_refused_wholesale() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), fp);
        // A server with a different Chebyshev order must not accept it.
        let other = basis_fingerprint(&CascnConfig { k: 3, ..cfg() });
        assert_ne!(fp, other, "distinct configs get distinct fingerprints");
        assert_eq!(
            snapshot_from_text(&text, other).expect_err("fingerprint mismatch rejected"),
            SnapshotError::FingerprintMismatch { found: fp, expected: other }
        );
    }

    #[test]
    fn missing_file_is_a_clean_cold_start_and_save_is_atomic() {
        let dir = std::env::temp_dir().join(format!("cascn_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        std::fs::remove_file(&path).ok();
        let fp = basis_fingerprint(&cfg());
        assert_eq!(load_snapshot(&path, fp), Ok(None), "missing file is not an error");

        let (cache, cascades) = warmed_cache();
        save_snapshot(&path, &cache.export(), fp).expect("save succeeds");
        let restored = load_snapshot(&path, fp).expect("loads").expect("present");
        assert_eq!(restored.len(), cascades.len());

        // A snapshot truncated on disk (crash mid-rewrite simulated by a
        // direct truncation) cold-starts instead of erroring the server.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_snapshot(&path, fp).is_err());
        std::fs::remove_file(&path).ok();
    }
}
