//! Crash-recoverable persistence for the spectral cache.
//!
//! A replica that dies — `kill -9`, OOM, power loss — loses its warm
//! [`BasisCache`](crate::BasisCache) and pays the full spectral recompute
//! cost for every request after restart. This module snapshots the cache
//! to disk so a restarted replica warm-starts instead:
//!
//! - **Format** — plain text, one versioned header, a basis fingerprint of
//!   the config fields that shape a spectral basis, the entries in LRU
//!   order (oldest first), and an FNV-1a 64 checksum footer — the same
//!   integrity scheme as training checkpoints. Floats are written with
//!   `{:?}` (shortest round-trip), so a restore is **bit-identical** to
//!   the in-memory cache it came from.
//! - **Atomicity** — writes go through [`atomic_write`] (temp file in the
//!   same directory + rename), so a crash mid-save leaves the previous
//!   snapshot intact, never a torn file.
//! - **Rejection is always a cold start, never a panic** — a truncated
//!   file, a flipped bit, an unknown version, or a snapshot written under
//!   a different basis-shaping config all load as a structured
//!   [`SnapshotError`]; the server logs it, starts cold, and overwrites
//!   the bad snapshot on the next save. A stale or foreign basis can never
//!   be served.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use cascn::{atomic_write, fnv1a64, CascnConfig, ChebKernel, LambdaMax, LaplacianKind};
use cascn_cascades::{Cascade, Event};
use cascn_graph::SpectralBasis;
use cascn_tensor::{Csr, SparseOp};

/// First line of every snapshot file. v3 appends a live-cascade section
/// (the streaming `/observe` registry: each resident cascade and its
/// window) after the cache entries; the incremental operator state itself
/// is derived, not persisted, and is rebuilt cold on restore. v2 stored
/// the sparse operator form of each basis (CSR core + optional rank-1
/// teleport term) instead of the materialized dense Chebyshev matrices v1
/// carried. Older versions are rejected as [`SnapshotError::VersionSkew`]
/// and cold-start cleanly.
pub const SNAPSHOT_HEADER: &str = "# cascn spectral cache snapshot v3";
const CHECKSUM_PREFIX: &str = "# checksum fnv1a64 ";

/// Version of the spectral *compute kernel* whose outputs populate the
/// cache. Bumped whenever the kernel changes numerics (e.g. the move from
/// materialized dense bases to the sparse operator recurrence), so a
/// restarted replica can never mix bases produced by a different kernel
/// generation — the fingerprint folds this in.
pub const SPECTRAL_KERNEL_VERSION: u32 = 2;

/// One restored cache entry: the cascade, its window, and the basis.
pub type SnapshotEntry = (Cascade, f64, SpectralBasis);

/// One restored live-registry entry: the growing cascade and the window
/// its spectral state is maintained at.
pub type LiveSnapshotEntry = (Cascade, f64);

/// Everything a snapshot restores: the finished-cache entries and the
/// live-registry entries, in file order.
pub type SnapshotContents = (Vec<SnapshotEntry>, Vec<LiveSnapshotEntry>);

/// Why a snapshot was rejected. Every variant cold-starts the cache; none
/// of them is a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The checksum footer is missing — the file was cut short mid-write.
    Truncated,
    /// The footer is present but does not match the body — bit rot or a
    /// partial overwrite.
    ChecksumMismatch,
    /// The header names a version this build does not read.
    VersionSkew(String),
    /// The snapshot was written under different basis-shaping config
    /// (Chebyshev order, node cap, α, λ_max/Laplacian strategy) — its
    /// bases would be stale for this server, so it is refused wholesale.
    FingerprintMismatch { found: u64, expected: u64 },
    /// Structurally invalid content inside a checksum-valid file.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated (no checksum footer)"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::VersionSkew(header) => {
                write!(f, "unrecognized snapshot header `{header}` (expected `{SNAPSHOT_HEADER}`)")
            }
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot basis fingerprint {found:016x} does not match this server's {expected:016x}"
            ),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

/// Fingerprint of the config fields a [`SpectralBasis`] depends on. Two
/// servers agree on this exactly when `spectral_basis` would produce the
/// same bases for the same cascade — model *parameters* are deliberately
/// excluded (the basis is parameter-independent and survives hot reloads).
pub fn basis_fingerprint(cfg: &CascnConfig) -> u64 {
    let mut bytes = Vec::with_capacity(40);
    bytes.extend_from_slice(&SPECTRAL_KERNEL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(cfg.k as u64).to_le_bytes());
    bytes.extend_from_slice(&(cfg.max_nodes as u64).to_le_bytes());
    bytes.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    bytes.push(match cfg.lambda_max {
        LambdaMax::Exact => 0,
        LambdaMax::Approx2 => 1,
    });
    bytes.push(match cfg.laplacian {
        LaplacianKind::Directed => 0,
        LaplacianKind::Undirected => 1,
    });
    bytes.push(match cfg.cheb_kernel {
        ChebKernel::Sparse => 0,
        ChebKernel::Dense => 1,
    });
    fnv1a64(&bytes)
}

/// Serializes exported cache entries plus the live-cascade registry into
/// snapshot text, footer included.
pub fn snapshot_to_text(
    entries: &[(Cascade, f64, Arc<SpectralBasis>)],
    live: &[LiveSnapshotEntry],
    basis_fp: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + entries.len() * 512 + live.len() * 128);
    let _ = writeln!(out, "{SNAPSHOT_HEADER}");
    let _ = writeln!(out, "basis_fp {basis_fp:016x}");
    let _ = writeln!(out, "entries {}", entries.len());
    for (cascade, window, basis) in entries {
        let _ = writeln!(out, "entry {:016x}", window.to_bits());
        write_cascade(&mut out, cascade);
        write_basis(&mut out, basis);
    }
    let _ = writeln!(out, "live {}", live.len());
    for (cascade, window) in live {
        let _ = writeln!(out, "entry {:016x}", window.to_bits());
        write_cascade(&mut out, cascade);
    }
    let checksum = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "{CHECKSUM_PREFIX}{checksum:016x}");
    out
}

fn write_cascade(out: &mut String, cascade: &Cascade) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "cascade {} {:?} {}", cascade.id, cascade.start_time, cascade.events.len());
    for e in &cascade.events {
        let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
        let _ = writeln!(out, "event {} {parent} {:?}", e.user, e.time);
    }
}

/// Atomically writes a snapshot of `entries` and `live` to `path`.
pub fn save_snapshot(
    path: &Path,
    entries: &[(Cascade, f64, Arc<SpectralBasis>)],
    live: &[LiveSnapshotEntry],
    basis_fp: u64,
) -> std::io::Result<()> {
    atomic_write(path, snapshot_to_text(entries, live, basis_fp).as_bytes())
}

/// Parses snapshot text, verifying the checksum footer *first* and then
/// the version header and basis fingerprint, so no corrupt or foreign
/// content is ever interpreted as cache state.
pub fn snapshot_from_text(
    text: &str,
    expected_fp: u64,
) -> Result<SnapshotContents, SnapshotError> {
    let body = verify_checksum(text)?;
    let mut lines = body.lines();
    let header = lines.next().unwrap_or_default();
    if header.trim() != SNAPSHOT_HEADER {
        return Err(SnapshotError::VersionSkew(header.trim().to_string()));
    }
    let found_fp = match lines.next().and_then(|l| l.strip_prefix("basis_fp ")) {
        Some(hex) => u64::from_str_radix(hex.trim(), 16)
            .map_err(|_| SnapshotError::Malformed(format!("bad basis_fp `{hex}`")))?,
        None => return Err(SnapshotError::Malformed("missing basis_fp line".into())),
    };
    if found_fp != expected_fp {
        return Err(SnapshotError::FingerprintMismatch { found: found_fp, expected: expected_fp });
    }
    let count: usize = match lines.next().and_then(|l| l.strip_prefix("entries ")) {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| SnapshotError::Malformed(format!("bad entries count `{n}`")))?,
        None => return Err(SnapshotError::Malformed("missing entries line".into())),
    };

    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(read_entry(&mut lines).map_err(|m| {
            SnapshotError::Malformed(format!("entry {i}: {m}"))
        })?);
    }
    let live_count: usize = match lines.next().and_then(|l| l.strip_prefix("live ")) {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| SnapshotError::Malformed(format!("bad live count `{n}`")))?,
        None => return Err(SnapshotError::Malformed("missing live section".into())),
    };
    let mut live = Vec::with_capacity(live_count);
    for i in 0..live_count {
        live.push(read_live_entry(&mut lines).map_err(|m| {
            SnapshotError::Malformed(format!("live entry {i}: {m}"))
        })?);
    }
    if lines.next().is_some() {
        return Err(SnapshotError::Malformed("trailing content after last entry".into()));
    }
    Ok((out, live))
}

/// Loads a snapshot file. `Ok(None)` means the file does not exist (a
/// routine cold start); every other failure is a [`SnapshotError`].
pub fn load_snapshot(
    path: &Path,
    expected_fp: u64,
) -> Result<Option<SnapshotContents>, SnapshotError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Malformed(format!("read {}: {e}", path.display()))),
    };
    snapshot_from_text(&text, expected_fp).map(Some)
}

fn verify_checksum(text: &str) -> Result<&str, SnapshotError> {
    let tail = text.trim_end_matches(['\r', '\n']);
    let footer_start = match tail.rfind('\n') {
        Some(i) => i + 1,
        None => return Err(SnapshotError::Truncated),
    };
    let footer = &tail[footer_start..];
    let Some(hex) = footer.strip_prefix(CHECKSUM_PREFIX) else {
        return Err(SnapshotError::Truncated);
    };
    let declared =
        u64::from_str_radix(hex.trim(), 16).map_err(|_| SnapshotError::Truncated)?;
    // The checksum covers every byte of the body as written, including the
    // newline that precedes the footer line.
    let body = &text[..footer_start];
    if fnv1a64(body.as_bytes()) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(body)
}

/// Writes the sparse operator form of a basis: a `basis` line with the
/// scalar metadata, one `row` line of `col:value` pairs per CSR row (in
/// stored — strictly ascending — column order, so the reconstruction via
/// [`Csr::from_rows`] is bit- and layout-identical), and the optional
/// rank-1 teleport term. Floats use `{:?}` (shortest round-trip).
fn write_basis(out: &mut String, basis: &SpectralBasis) {
    use std::fmt::Write as _;
    let op = &basis.op;
    let n = op.dim();
    let has_rank1 = usize::from(op.rank1().is_some());
    let _ = writeln!(
        out,
        "basis {:?} {n} {} {has_rank1}",
        basis.lambda_max, basis.k
    );
    for r in 0..n {
        let _ = write!(out, "row {}", op.csr().row(r).len());
        for &(c, v) in op.csr().row(r) {
            let _ = write!(out, " {c}:{v:?}");
        }
        out.push('\n');
    }
    if let Some((coeff, u, v)) = op.rank1() {
        let _ = writeln!(out, "rank1 {coeff:?}");
        let _ = writeln!(out, "u {}", join_floats(u));
        let _ = writeln!(out, "v {}", join_floats(v));
    }
}

fn join_floats(xs: &[f32]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| format!("{x:?}")).collect();
    parts.join(" ")
}

/// Reads one `entry` line plus its cascade block — the whole of a live
/// entry, and the front half of a cache entry.
fn read_live_entry<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<LiveSnapshotEntry, String> {
    let entry_line = lines.next().ok_or("missing entry line")?;
    let window_bits = entry_line
        .strip_prefix("entry ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| format!("bad entry line `{entry_line}`"))?;
    let window = f64::from_bits(window_bits);

    let cas_line = lines.next().ok_or("missing cascade line")?;
    let toks: Vec<&str> = cas_line.split_whitespace().collect();
    let (id, start_time, n_events): (u64, f64, usize) = match toks.as_slice() {
        ["cascade", id, start, n] => (
            id.parse().map_err(|_| format!("bad cascade id `{id}`"))?,
            start.parse().map_err(|_| format!("bad start time `{start}`"))?,
            n.parse().map_err(|_| format!("bad event count `{n}`"))?,
        ),
        _ => return Err(format!("bad cascade line `{cas_line}`")),
    };
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let line = lines.next().ok_or("missing event line")?;
        let t: Vec<&str> = line.split_whitespace().collect();
        let ["event", user, parent, time] = t.as_slice() else {
            return Err(format!("bad event line `{line}`"));
        };
        events.push(Event {
            user: user.parse().map_err(|_| format!("bad user `{user}`"))?,
            parent: match *parent {
                "-" => None,
                p => Some(p.parse().map_err(|_| format!("bad parent `{p}`"))?),
            },
            time: time.parse().map_err(|_| format!("bad time `{time}`"))?,
        });
    }
    // A checksum-valid snapshot written by this code always carries valid
    // cascades, but the fallible constructor keeps even a hand-crafted
    // file from panicking the server.
    let cascade = Cascade::try_new(id, start_time, events)
        .map_err(|fault| format!("invalid cascade {id}: {fault}"))?;
    Ok((cascade, window))
}

fn read_entry<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<SnapshotEntry, String> {
    let (cascade, window) = read_live_entry(lines)?;
    let basis_line = lines.next().ok_or("missing basis line")?;
    let t: Vec<&str> = basis_line.split_whitespace().collect();
    let (lambda_max, n, k, has_rank1): (f32, usize, usize, usize) = match t.as_slice() {
        ["basis", l, n, k, r1] => (
            l.parse().map_err(|_| format!("bad lambda_max `{l}`"))?,
            n.parse().map_err(|_| format!("bad node count `{n}`"))?,
            k.parse().map_err(|_| format!("bad order `{k}`"))?,
            r1.parse().map_err(|_| format!("bad rank1 flag `{r1}`"))?,
        ),
        _ => return Err(format!("bad basis line `{basis_line}`")),
    };
    if has_rank1 > 1 {
        return Err(format!("rank1 flag must be 0 or 1, got {has_rank1}"));
    }
    let rows = read_csr_rows(lines, n)?;
    let csr = Csr::from_rows(n, &rows);
    let rank1 = if has_rank1 == 1 {
        let coeff_line = lines.next().ok_or("missing rank1 line")?;
        let coeff: f32 = coeff_line
            .strip_prefix("rank1 ")
            .and_then(|c| c.trim().parse().ok())
            .ok_or_else(|| format!("bad rank1 line `{coeff_line}`"))?;
        let u = read_vector(lines, "u", n)?;
        let v = read_vector(lines, "v", n)?;
        Some((coeff, u, v))
    } else {
        None
    };
    let op = Arc::new(SparseOp::new(csr, rank1));
    Ok((cascade, window, SpectralBasis::from_parts(lambda_max, k, op)))
}

/// Reads `n` CSR row lines, validating strictly-ascending in-range columns
/// so a hand-crafted file fails as [`SnapshotError::Malformed`] instead of
/// tripping `Csr::from_rows`'s assertions.
fn read_csr_rows<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<Vec<Vec<(usize, f32)>>, String> {
    let mut rows = Vec::with_capacity(n);
    for r in 0..n {
        let line = lines.next().ok_or_else(|| format!("missing CSR row {r}"))?;
        let rest = line
            .strip_prefix("row ")
            .ok_or_else(|| format!("bad CSR row line `{line}`"))?;
        let mut toks = rest.split_whitespace();
        let count: usize = toks
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| format!("bad nnz count in `{line}`"))?;
        let mut row = Vec::with_capacity(count);
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let pair = toks.next().ok_or_else(|| format!("short CSR row {r}"))?;
            let (c, v) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad entry `{pair}` in CSR row {r}"))?;
            let col: usize = c.parse().map_err(|_| format!("bad column `{c}`"))?;
            let val: f32 = v.parse().map_err(|_| format!("bad value `{v}`"))?;
            if col >= n {
                return Err(format!("column {col} out of range in CSR row {r}"));
            }
            if prev.is_some_and(|p| col <= p) {
                return Err(format!("columns not strictly ascending in CSR row {r}"));
            }
            prev = Some(col);
            row.push((col, val));
        }
        if toks.next().is_some() {
            return Err(format!("trailing entries in CSR row {r}"));
        }
        rows.push(row);
    }
    Ok(rows)
}

fn read_vector<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    n: usize,
) -> Result<Vec<f32>, String> {
    let line = lines.next().ok_or_else(|| format!("missing `{tag}` vector"))?;
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| format!("bad `{tag}` vector line `{line}`"))?;
    let mut out = Vec::with_capacity(n);
    for tok in rest.split_whitespace() {
        out.push(tok.parse::<f32>().map_err(|_| format!("bad float `{tok}`"))?);
    }
    if out.len() != n {
        return Err(format!("`{tag}` vector has {} values, expected {n}", out.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_graph::SpectralBasis;

    use crate::cache::BasisCache;

    fn cfg() -> CascnConfig {
        CascnConfig { max_nodes: 10, max_steps: 4, ..CascnConfig::default() }
    }

    fn cas(id: u64, extra: usize) -> Cascade {
        let mut events = vec![Event { user: id, parent: None, time: 0.0 }];
        for i in 1..=extra {
            events.push(Event { user: id + i as u64, parent: Some(0), time: i as f64 });
        }
        Cascade::new(id, 0.0, events)
    }

    /// A cache warmed with real spectral bases for a few cascades.
    fn warmed_cache() -> (BasisCache, Vec<Cascade>) {
        let cache = BasisCache::new(8);
        let cascades: Vec<Cascade> = (1..=3).map(|i| cas(i, i as usize + 1)).collect();
        for c in &cascades {
            let _ = cache.get_or_insert_with(c, 25.0, || cascn::spectral_basis(c, 25.0, &cfg()));
        }
        (cache, cascades)
    }

    /// Asserts two operators are bit- and layout-identical: same CSR
    /// structure entry for entry, same optional rank-1 term.
    fn assert_op_bits_eq(a: &SparseOp, b: &SparseOp) {
        assert_eq!(a.dim(), b.dim());
        let bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        for r in 0..a.dim() {
            let ra: Vec<(usize, u32)> = a.csr().row(r).iter().map(|&(c, v)| (c, v.to_bits())).collect();
            let rb: Vec<(usize, u32)> = b.csr().row(r).iter().map(|&(c, v)| (c, v.to_bits())).collect();
            assert_eq!(ra, rb, "CSR row {r} round-trips exactly");
        }
        match (a.rank1(), b.rank1()) {
            (None, None) => {}
            (Some((ca, ua, va)), Some((cb, ub, vb))) => {
                assert_eq!(ca.to_bits(), cb.to_bits(), "rank-1 coefficient round-trips");
                assert_eq!(bits(ua), bits(ub), "rank-1 u round-trips");
                assert_eq!(bits(va), bits(vb), "rank-1 v round-trips");
            }
            (x, y) => panic!("rank-1 presence mismatch: {:?} vs {:?}", x.is_some(), y.is_some()),
        }
    }

    #[test]
    fn round_trip_is_bit_identical_to_the_in_memory_lru() {
        let (cache, cascades) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let exported = cache.export();
        let text = snapshot_to_text(&exported, &[], fp);
        let (restored, live) = snapshot_from_text(&text, fp).expect("clean snapshot loads");
        assert!(live.is_empty());
        assert_eq!(restored.len(), cascades.len());
        for ((c0, w0, b0), (c1, w1, b1)) in exported.iter().zip(&restored) {
            assert_eq!(c0.id, c1.id);
            assert_eq!(c0.start_time.to_bits(), c1.start_time.to_bits());
            assert_eq!(c0.events.len(), c1.events.len());
            assert_eq!(w0.to_bits(), w1.to_bits());
            assert_eq!(b0.lambda_max.to_bits(), b1.lambda_max.to_bits());
            assert_eq!(b0.k, b1.k);
            assert_op_bits_eq(&b0.op, &b1.op);
        }
        // Seeding a fresh cache with the restored entries serves hits
        // without recomputation — the warm-start contract.
        let fresh = BasisCache::new(8);
        assert_eq!(fresh.seed(restored), cascades.len());
        for c in &cascades {
            let _ = fresh.get_or_insert_with(c, 25.0, || panic!("restored entry must hit"));
        }
        assert_eq!(fresh.stats().warm_hits as usize, cascades.len());
    }

    #[test]
    fn live_cascades_round_trip_with_the_cache() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let live: Vec<LiveSnapshotEntry> = vec![(cas(9, 3), 25.0), (cas(10, 1), 50.0)];
        let text = snapshot_to_text(&cache.export(), &live, fp);
        let (entries, restored) = snapshot_from_text(&text, fp).expect("clean snapshot loads");
        assert_eq!(entries.len(), 3);
        assert_eq!(restored.len(), live.len());
        for ((c0, w0), (c1, w1)) in live.iter().zip(&restored) {
            assert_eq!(c0.id, c1.id);
            assert_eq!(c0.start_time.to_bits(), c1.start_time.to_bits());
            assert_eq!(w0.to_bits(), w1.to_bits());
            assert_eq!(c0.events.len(), c1.events.len());
            for (e0, e1) in c0.events.iter().zip(&c1.events) {
                assert_eq!(e0.user, e1.user);
                assert_eq!(e0.parent, e1.parent);
                assert_eq!(e0.time.to_bits(), e1.time.to_bits());
            }
        }
        // A live entry violating cascade invariants (events out of order)
        // must reject the whole snapshot, not panic or half-load.
        let mut bad = cas(11, 2);
        bad.events[1].time = -5.0;
        let bad_text = snapshot_to_text(&[], &[(bad, 25.0)], fp);
        assert!(matches!(snapshot_from_text(&bad_text, fp), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn non_finite_floats_survive_the_text_format() {
        use cascn_tensor::Matrix;
        let csr = Csr::from_dense(&Matrix::from_vec(
            2,
            2,
            vec![f32::NAN, 0.0, f32::INFINITY, f32::NEG_INFINITY],
        ));
        let op = SparseOp::new(
            csr,
            Some((f32::NAN, vec![f32::INFINITY, 1.0], vec![0.5, f32::NEG_INFINITY])),
        );
        let basis = SpectralBasis::from_parts(2.0, 1, Arc::new(op));
        let entries = vec![(cas(1, 0), 25.0, Arc::new(basis))];
        let text = snapshot_to_text(&entries, &[], 7);
        let (restored, _) = snapshot_from_text(&text, 7).expect("loads");
        let op = &restored[0].2.op;
        assert!(op.csr().row(0)[0].1.is_nan());
        assert_eq!(op.csr().row(1)[0].1, f32::INFINITY);
        assert_eq!(op.csr().row(1)[1].1, f32::NEG_INFINITY);
        let (coeff, u, v) = op.rank1().expect("rank-1 survives");
        assert!(coeff.is_nan());
        assert_eq!(u[0], f32::INFINITY);
        assert_eq!(v[1], f32::NEG_INFINITY);
    }

    #[test]
    fn malformed_csr_rows_are_rejected_without_panicking() {
        // A checksum-valid file with out-of-order or out-of-range columns
        // must fail as Malformed — never trip Csr::from_rows assertions.
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), &[], fp);
        for (needle, bad) in [(" 0:", " 9:"), ("row 2 ", "row 2 1:0.5 1:0.5 ")] {
            let Some(pos) = text.find(needle) else { continue };
            let mut hacked = text.clone();
            hacked.replace_range(pos..pos + needle.len(), bad);
            let body_end = hacked.rfind(CHECKSUM_PREFIX).unwrap();
            let body = hacked[..body_end].to_string();
            let refooted =
                format!("{body}{CHECKSUM_PREFIX}{:016x}\n", cascn::fnv1a64(body.as_bytes()));
            assert!(
                matches!(
                    snapshot_from_text(&refooted, fp),
                    Err(SnapshotError::Malformed(_))
                ),
                "tampered CSR `{bad}` must be Malformed"
            );
        }
    }

    #[test]
    fn truncated_snapshot_cold_starts() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), &[], fp);
        // Every truncation point must fail cleanly — never panic, never
        // produce entries.
        for keep in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let cut = &text[..keep];
            let err = snapshot_from_text(cut, fp).expect_err("truncation must be rejected");
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch),
                "cut at {keep}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), &[], fp);
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        assert_eq!(
            snapshot_from_text(&corrupted, fp).expect_err("bit flip rejected"),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn version_skew_is_rejected_before_any_entry_parses() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), &[], fp);
        let skewed = text.replace("snapshot v3", "snapshot v9");
        // Re-checksum so only the version differs.
        let body_end = skewed.rfind(CHECKSUM_PREFIX).unwrap();
        let body = &skewed[..body_end];
        let refooted = format!("{body}{CHECKSUM_PREFIX}{:016x}\n", cascn::fnv1a64(body.as_bytes()));
        match snapshot_from_text(&refooted, fp) {
            Err(SnapshotError::VersionSkew(h)) => assert!(h.contains("v9"), "{h}"),
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn foreign_basis_fingerprint_is_refused_wholesale() {
        let (cache, _) = warmed_cache();
        let fp = basis_fingerprint(&cfg());
        let text = snapshot_to_text(&cache.export(), &[], fp);
        // A server with a different Chebyshev order must not accept it.
        let other = basis_fingerprint(&CascnConfig { k: 3, ..cfg() });
        assert_ne!(fp, other, "distinct configs get distinct fingerprints");
        assert_eq!(
            snapshot_from_text(&text, other).expect_err("fingerprint mismatch rejected"),
            SnapshotError::FingerprintMismatch { found: fp, expected: other }
        );
    }

    #[test]
    fn missing_file_is_a_clean_cold_start_and_save_is_atomic() {
        let dir = std::env::temp_dir().join(format!("cascn_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        std::fs::remove_file(&path).ok();
        let fp = basis_fingerprint(&cfg());
        assert_eq!(load_snapshot(&path, fp), Ok(None), "missing file is not an error");

        let (cache, cascades) = warmed_cache();
        save_snapshot(&path, &cache.export(), &[], fp).expect("save succeeds");
        let (restored, _) = load_snapshot(&path, fp).expect("loads").expect("present");
        assert_eq!(restored.len(), cascades.len());

        // A snapshot truncated on disk (crash mid-rewrite simulated by a
        // direct truncation) cold-starts instead of erroring the server.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_snapshot(&path, fp).is_err());
        std::fs::remove_file(&path).ok();
    }
}
