//! The failover router: the front door of a multi-replica serving tier.
//!
//! A `cascn-router` sits in front of N `cascn-serve` replicas and gives
//! clients one address that survives any single replica's death:
//!
//! - **Placement** — `POST /predict` bodies are parsed with the same
//!   streaming validator the replicas use, and each cascade's content
//!   fingerprint ([`crate::cache::cascade_key`]) is folded into one
//!   request fingerprint. Replicas are ranked by rendezvous (highest
//!   random weight) hashing over that fingerprint, so identical payloads
//!   always land on the same replica — maximizing its spectral-cache
//!   affinity — while losing a replica only remaps the keys it owned.
//!   `POST /observe` routes by cascade *identity* (id + start time) rather
//!   than content, so every append in a cascade's lifetime reaches the one
//!   replica holding its live incremental state; appends are not
//!   idempotent, so observe never fails over to a different replica.
//! - **Failover** — a connect or read failure against the chosen replica
//!   is retried against the next replica in rendezvous order, with
//!   jittered exponential backoff between attempts, a bounded attempt
//!   budget, and one overall per-request deadline. A backend `503`
//!   (overload shed) also fails over, but does not count against the
//!   replica's health.
//! - **Circuit breaker** — a replica that fails `failure_threshold`
//!   consecutive times is **ejected**: it receives no traffic until a
//!   background `/healthz` probe succeeds, which moves it to **half-open**
//!   (trial traffic allowed); the next success promotes it to healthy,
//!   the next failure re-ejects it.
//! - **Graceful degradation** — when *no* replica is routable the router
//!   answers `503` with `Retry-After` instead of hanging or crashing; it
//!   keeps probing and recovers the moment any replica comes back.
//!
//! Correctness contract: the router never rewrites a prediction. It
//! relays the backend's bytes, so a routed response is bit-identical to
//! asking that replica directly — and every replica is bit-identical to
//! `predict_log` by the existing serving contract.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cascn::resolve_threads;
use cascn_cascades::stream::{parse_cascades, parse_observe_body, StreamLimits};

use crate::cache::cascade_key;
use crate::http::{read_request, write_response, ParseError, Request};
use crate::metrics::RouterMetrics;
use crate::server::ConnQueue;
use crate::sync::{lock_recover, wait_timeout_recover};

/// Replica lifecycle as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Process not running (crashed and awaiting supervisor restart).
    Down,
    /// Spawned (or registered) but not yet probed healthy.
    Starting,
    /// Circuit open: too many consecutive failures; no traffic until a
    /// probe succeeds.
    Ejected,
    /// Circuit half-open: one probe succeeded after ejection; trial
    /// traffic allowed, the next outcome decides.
    HalfOpen,
    /// Probed healthy and serving.
    Healthy,
}

/// Point-in-time view of one replica, for metrics and logs.
#[derive(Debug, Clone)]
pub struct ReplicaView {
    pub index: usize,
    pub state: ReplicaState,
    pub addr: Option<String>,
    pub restarts: u64,
}

struct Slot {
    addr: Option<String>,
    state: ReplicaState,
    consecutive_failures: u32,
    restarts: u64,
}

/// The shared routing table: one slot per replica, written by the
/// supervisor (addresses, restarts) and the prober/forwarder (states).
pub struct ReplicaSet {
    slots: Vec<Mutex<Slot>>,
    failure_threshold: u32,
}

impl ReplicaSet {
    /// `n` empty slots (supervisor mode: addresses arrive as replicas
    /// report their ephemeral ports).
    pub fn new(n: usize, failure_threshold: u32) -> Self {
        Self {
            slots: (0..n)
                .map(|_| {
                    Mutex::new(Slot {
                        addr: None,
                        state: ReplicaState::Down,
                        consecutive_failures: 0,
                        restarts: 0,
                    })
                })
                .collect(),
            failure_threshold: failure_threshold.max(1),
        }
    }

    /// Slots pre-filled with externally managed backend addresses.
    pub fn with_backends(addrs: &[String], failure_threshold: u32) -> Self {
        let set = Self::new(addrs.len(), failure_threshold);
        for (i, a) in addrs.iter().enumerate() {
            set.set_addr(i, a.clone());
        }
        set
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn lock(&self, i: usize) -> std::sync::MutexGuard<'_, Slot> {
        lock_recover(&self.slots[i])
    }

    /// Publishes a (re)started replica's address; it enters `Starting`
    /// and is promoted by the next successful probe.
    pub fn set_addr(&self, i: usize, addr: String) {
        let mut s = self.lock(i);
        s.addr = Some(addr);
        s.state = ReplicaState::Starting;
        s.consecutive_failures = 0;
    }

    /// Marks a replica's process dead; its address is dropped so no
    /// forwarder or probe can race against the stale port.
    pub fn mark_down(&self, i: usize) {
        let mut s = self.lock(i);
        s.addr = None;
        s.state = ReplicaState::Down;
    }

    /// Counts a supervisor restart of replica `i`.
    pub fn bump_restarts(&self, i: usize) {
        self.lock(i).restarts += 1;
    }

    pub fn addr(&self, i: usize) -> Option<String> {
        self.lock(i).addr.clone()
    }

    pub fn state(&self, i: usize) -> ReplicaState {
        self.lock(i).state
    }

    /// The address of replica `i` if it may receive traffic right now
    /// (healthy, half-open, or still unprobed-but-started).
    pub fn routable(&self, i: usize) -> Option<String> {
        let s = self.lock(i);
        match s.state {
            ReplicaState::Healthy | ReplicaState::HalfOpen | ReplicaState::Starting => s.addr.clone(),
            ReplicaState::Down | ReplicaState::Ejected => None,
        }
    }

    /// A forwarded request to `i` succeeded: reset the failure streak and
    /// close the circuit.
    pub fn record_success(&self, i: usize) {
        let mut s = self.lock(i);
        s.consecutive_failures = 0;
        if matches!(s.state, ReplicaState::HalfOpen | ReplicaState::Starting) {
            s.state = ReplicaState::Healthy;
        }
    }

    /// A forwarded request to `i` failed at the transport level. After
    /// `failure_threshold` consecutive failures the replica is ejected.
    pub fn record_failure(&self, i: usize) {
        let mut s = self.lock(i);
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        match s.state {
            ReplicaState::HalfOpen => s.state = ReplicaState::Ejected,
            ReplicaState::Healthy | ReplicaState::Starting => {
                if s.consecutive_failures >= self.failure_threshold {
                    s.state = ReplicaState::Ejected;
                }
            }
            ReplicaState::Down | ReplicaState::Ejected => {}
        }
    }

    /// Applies one health-probe outcome to the circuit breaker.
    pub fn probe_result(&self, i: usize, ok: bool) {
        let mut s = self.lock(i);
        if ok {
            s.consecutive_failures = 0;
            s.state = match s.state {
                ReplicaState::Ejected => ReplicaState::HalfOpen,
                ReplicaState::Down => s.state,
                _ => ReplicaState::Healthy,
            };
        } else if s.addr.is_some() {
            s.consecutive_failures = s.consecutive_failures.saturating_add(1);
            if matches!(s.state, ReplicaState::HalfOpen)
                || (matches!(s.state, ReplicaState::Healthy | ReplicaState::Starting)
                    && s.consecutive_failures >= self.failure_threshold)
            {
                s.state = ReplicaState::Ejected;
            }
        }
    }

    /// Replicas currently allowed to take traffic.
    pub fn live_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.routable(i).is_some()).count()
    }

    pub fn views(&self) -> Vec<ReplicaView> {
        (0..self.len())
            .map(|i| {
                let s = self.lock(i);
                ReplicaView {
                    index: i,
                    state: s.state,
                    addr: s.addr.clone(),
                    restarts: s.restarts,
                }
            })
            .collect()
    }
}

/// Everything tunable about a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`:0` picks an ephemeral port).
    pub addr: String,
    /// Connection workers (`0` = one per core, floor 4).
    pub workers: usize,
    /// Max `Content-Length` accepted on `POST /predict`.
    pub max_body_bytes: usize,
    /// Client-socket read timeout (slowloris defense, same as the
    /// replicas').
    pub read_timeout: Option<Duration>,
    /// Total wall-clock budget for one routed request, across every
    /// attempt and backoff sleep.
    pub deadline: Duration,
    /// Max backend attempts per request (first try + retries).
    pub max_attempts: usize,
    /// Base of the jittered exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Cap on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-attempt TCP connect budget.
    pub connect_timeout: Duration,
    /// Cadence of the background `/healthz` prober.
    pub probe_interval: Duration,
    /// Per-probe connect+read budget.
    pub probe_timeout: Duration,
    /// Consecutive transport failures before a replica is ejected.
    pub failure_threshold: u32,
    /// Per-request cascade/event caps (must match the replicas' so the
    /// router never forwards what a replica would reject).
    pub limits: StreamLimits,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body_bytes: 1 << 20,
            read_timeout: Some(Duration::from_secs(5)),
            deadline: Duration::from_secs(2),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(250),
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            failure_threshold: 3,
            limits: StreamLimits::default(),
            seed: 42,
        }
    }
}

/// Rendezvous (highest-random-weight) score of `(fingerprint, replica)`.
/// Deterministic, stateless, and minimally disruptive: removing a replica
/// remaps only the keys it owned.
fn rendezvous_score(fp: u64, replica: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&fp.to_le_bytes());
    bytes[8..].copy_from_slice(&(replica as u64).to_le_bytes());
    cascn::fnv1a64(&bytes)
}

/// Content fingerprint of a whole predict payload: the FNV fold of every
/// cascade's [`cascade_key`], so placement follows cascade content exactly
/// as the replicas' spectral caches do.
pub fn payload_fingerprint(keys: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for k in keys {
        for b in k.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Replica indices in rendezvous order for `fp` — the failover sequence.
pub fn route_order(fp: u64, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse((rendezvous_score(fp, i), i)));
    order
}

/// A parsed backend response, relayed verbatim to the client.
struct BackendResponse {
    status: u16,
    reason: String,
    retry_after: Option<String>,
    body: String,
}

/// Why one backend attempt produced no relayable response.
enum AttemptError {
    /// TCP connect/read/write failure — counts against replica health.
    Transport(String),
    /// The backend shed with 503 — fail over, but the replica is healthy.
    Shed(BackendResponse),
}

/// A bound-but-not-yet-running router.
pub struct Router {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: RouterConfig,
    replicas: Arc<ReplicaSet>,
    pub metrics: Arc<RouterMetrics>,
    /// Draw counter of the deterministic backoff jitter stream.
    jitter: AtomicU64,
}

impl Router {
    pub fn bind(config: RouterConfig, replicas: Arc<ReplicaSet>) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            jitter: AtomicU64::new(config.seed | 1),
            config,
            replicas,
            metrics: Arc::new(RouterMetrics::new()),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn replicas(&self) -> Arc<ReplicaSet> {
        Arc::clone(&self.replicas)
    }

    /// Serves until a `POST /shutdown` arrives. Runs the accept loop on
    /// the calling thread, a worker pool, and the background prober.
    pub fn run(self) -> io::Result<()> {
        let workers = if self.config.workers == 0 {
            resolve_threads(0).max(4)
        } else {
            self.config.workers
        };
        let running = AtomicBool::new(true);
        let stop = ShutdownSignal::new();
        let conns = ConnQueue::new(workers * 2);
        let Self {
            listener,
            local_addr,
            config,
            replicas,
            metrics,
            jitter,
        } = self;

        std::thread::scope(|s| {
            s.spawn(|| {
                probe_loop(&config, &replicas, &metrics, &stop);
            });
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(stream) = conns.pop() {
                        let ctx = RouterCtx {
                            config: &config,
                            replicas: &replicas,
                            metrics: &metrics,
                            running: &running,
                            stop: &stop,
                            jitter: &jitter,
                            local_addr,
                        };
                        handle_connection(stream, &ctx);
                    }
                });
            }

            for stream in listener.incoming() {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_read_timeout(config.read_timeout);
                if let Err(rejected) = conns.push(stream) {
                    metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
                    let mut w = io::BufWriter::new(rejected);
                    let _ = write_response(
                        &mut w,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", "1")],
                        "overloaded: connection queue full\n",
                        false,
                    );
                }
            }
            conns.close();
            stop.raise();
        });
        Ok(())
    }
}

/// A latch that sleeping loops (the prober, backoff waits, the
/// supervisor's restart delays) wait against, so shutdown interrupts the
/// sleep instead of waiting out the interval.
pub(crate) struct ShutdownSignal {
    state: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownSignal {
    pub(crate) fn new() -> Self {
        Self { state: Mutex::new(false), cv: Condvar::new() }
    }

    pub(crate) fn raise(&self) {
        let mut flag = lock_recover(&self.state);
        *flag = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `d`; returns true when shutdown was raised.
    pub(crate) fn wait(&self, d: Duration) -> bool {
        let mut flag = lock_recover(&self.state);
        let deadline = Instant::now() + d;
        while !*flag {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _timed_out) = wait_timeout_recover(&self.cv, flag, deadline - now);
            flag = next;
        }
        true
    }
}

/// The background health prober: every `probe_interval`, `GET /healthz`
/// against each replica with an address, feeding the circuit breaker.
fn probe_loop(
    config: &RouterConfig,
    replicas: &ReplicaSet,
    metrics: &RouterMetrics,
    stop: &ShutdownSignal,
) {
    loop {
        for i in 0..replicas.len() {
            let Some(addr) = replicas.addr(i) else { continue };
            let ok = probe_healthz(&addr, config.probe_timeout);
            if ok {
                metrics.probes_ok.fetch_add(1, Ordering::Relaxed);
            } else {
                metrics.probes_failed.fetch_add(1, Ordering::Relaxed);
            }
            replicas.probe_result(i, ok);
        }
        if stop.wait(config.probe_interval) {
            return;
        }
    }
}

/// One `GET /healthz` probe: any complete `200` response counts.
fn probe_healthz(addr: &str, timeout: Duration) -> bool {
    match send_backend(addr, "GET", "/healthz", "", timeout, timeout) {
        Ok(resp) => resp.status == 200,
        Err(_) => false,
    }
}

fn resolve_addr(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other(format!("{addr}: no socket address")))
}

/// One complete backend exchange on a fresh connection: connect (bounded),
/// send, read the full response (bounded).
fn send_backend(
    addr: &str,
    method: &str,
    target: &str,
    body: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<BackendResponse, String> {
    let sockaddr = resolve_addr(addr).map_err(|e| format!("resolve {addr}: {e}"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, connect_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))));
    let mut reader = BufReader::new(stream);
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: cascn-router\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    reader
        .get_mut()
        .write_all(raw.as_bytes())
        .map_err(|e| format!("send {addr}: {e}"))?;
    read_backend_response(&mut reader).map_err(|e| format!("read {addr}: {e}"))
}

/// Reads one HTTP/1.1 response with a `Content-Length` body.
fn read_backend_response(reader: &mut BufReader<TcpStream>) -> Result<BackendResponse, String> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status: {e}"))?;
    let mut parts = status_line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| format!("bad status code in `{}`", status_line.trim()))?,
        _ => return Err(format!("bad status line `{}`", status_line.trim())),
    };
    let reason = parts.collect::<Vec<_>>().join(" ");
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(|e| format!("header: {e}"))?;
        if n == 0 {
            return Err("eof inside headers".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|e| format!("bad content-length: {e}"))?;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = Some(value.trim().to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("body: {e}"))?;
    Ok(BackendResponse {
        status,
        reason: if reason.is_empty() { "Unknown".into() } else { reason },
        retry_after,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Shared references a router connection handler needs.
struct RouterCtx<'a> {
    config: &'a RouterConfig,
    replicas: &'a ReplicaSet,
    metrics: &'a RouterMetrics,
    running: &'a AtomicBool,
    stop: &'a ShutdownSignal,
    jitter: &'a AtomicU64,
    local_addr: SocketAddr,
}

impl RouterCtx<'_> {
    /// Deterministic jitter in `[0, cap]` — splitmix64 of a seeded draw
    /// counter, no wall clock, no OS randomness. The counter bump is the
    /// only shared-state touch, so concurrent handlers cannot lose a
    /// draw the way a load/xorshift/store sequence could; relaxed
    /// ordering is fine for the same reason it is for a metrics counter.
    fn jitter(&self, cap: Duration) -> Duration {
        let n = self.jitter.fetch_add(1, Ordering::Relaxed);
        let mut x = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let cap_us = cap.as_micros().min(u128::from(u64::MAX)) as u64;
        if cap_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(x % (cap_us + 1))
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &RouterCtx<'_>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader, ctx.config.max_body_bytes) {
            Ok(r) => r,
            Err(ParseError::TimedOut) => {
                let _ = write_response(&mut writer, 408, "Request Timeout", &[], "read timed out\n", false);
                return;
            }
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    ctx.metrics.requests_client_error.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(&mut writer, status, reason, &[], &format!("{err}\n"), false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let shutdown = request.method == "POST" && request.path == "/shutdown";
        if !respond(&request, ctx, &mut writer) {
            return;
        }
        if shutdown {
            ctx.running.store(false, Ordering::SeqCst);
            ctx.stop.raise();
            let _ = TcpStream::connect(ctx.local_addr);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn respond(req: &Request, ctx: &RouterCtx<'_>, writer: &mut impl io::Write) -> bool {
    let keep = req.keep_alive;
    let m = ctx.metrics;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            if ctx.replicas.live_count() > 0 {
                m.requests_ok.fetch_add(1, Ordering::Relaxed);
                write_response(writer, 200, "OK", &[], "ok\n", keep).is_ok()
            } else {
                m.no_backend.fetch_add(1, Ordering::Relaxed);
                write_response(
                    writer,
                    503,
                    "Service Unavailable",
                    &[("Retry-After", "1")],
                    "no live replicas\n",
                    keep,
                )
                .is_ok()
            }
        }
        ("GET", "/metrics") => {
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
            let body = m.render(&ctx.replicas.views());
            write_response(writer, 200, "OK", &[], &body, keep).is_ok()
        }
        ("POST", "/predict") => route_predict(req, ctx, writer),
        ("POST", "/observe") => route_observe(req, ctx, writer),
        // Fleet-wide fan-out: reload / snapshot every replica that has an
        // address, reporting per-replica outcomes.
        ("POST", "/reload") | ("POST", "/snapshot") => fan_out(req.path.as_str(), ctx, writer, keep),
        ("POST", "/shutdown") => {
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
            write_response(writer, 200, "OK", &[], "shutting down\n", keep).is_ok()
        }
        _ => {
            m.requests_client_error.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                404,
                "Not Found",
                &[],
                &format!("no route for {} {}\n", req.method, req.path),
                keep,
            )
            .is_ok()
        }
    }
}

/// Forwards `path` to every replica with an address; `200` only when all
/// of them succeeded.
fn fan_out(path: &str, ctx: &RouterCtx<'_>, writer: &mut impl io::Write, keep: bool) -> bool {
    let mut lines = String::new();
    let mut failures = 0usize;
    let mut targeted = 0usize;
    for i in 0..ctx.replicas.len() {
        let Some(addr) = ctx.replicas.addr(i) else {
            lines.push_str(&format!("replica {i}: down\n"));
            continue;
        };
        targeted += 1;
        match send_backend(&addr, "POST", path, "", ctx.config.connect_timeout, ctx.config.deadline) {
            Ok(resp) if resp.status == 200 => {
                lines.push_str(&format!("replica {i}: {}", ensure_newline(&resp.body)));
            }
            Ok(resp) => {
                failures += 1;
                lines.push_str(&format!("replica {i}: status {} {}", resp.status, ensure_newline(&resp.body)));
            }
            Err(e) => {
                failures += 1;
                lines.push_str(&format!("replica {i}: {e}\n"));
            }
        }
    }
    if failures == 0 && targeted > 0 {
        ctx.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
        write_response(writer, 200, "OK", &[], &lines, keep).is_ok()
    } else {
        ctx.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
        write_response(writer, 502, "Bad Gateway", &[], &lines, keep).is_ok()
    }
}

fn ensure_newline(s: &str) -> String {
    if s.ends_with('\n') {
        s.to_string()
    } else {
        format!("{s}\n")
    }
}

/// The placement fingerprint for a live cascade: identity only (id plus
/// start-time bits), never content, so a cascade keeps routing to the same
/// replica as it grows event by event.
pub fn observe_fingerprint(id: u64, start_time: f64) -> u64 {
    payload_fingerprint([id, start_time.to_bits()])
}

/// `POST /observe`: identity fingerprint → rendezvous owner → one attempt.
///
/// Unlike `/predict` there is no failover walk: an append applied by one
/// replica and retried against another would fork the live cascade (the
/// second replica either rejects the suffix or rebuilds divergent state),
/// and a transport error after the bytes left gives no way to know whether
/// the first replica applied them. So the router relays the owner's answer
/// — or its failure — verbatim, and lets the client decide.
fn route_observe(req: &Request, ctx: &RouterCtx<'_>, writer: &mut impl io::Write) -> bool {
    let started = Instant::now();
    let keep = req.keep_alive;
    let m = ctx.metrics;

    let Ok(text) = std::str::from_utf8(&req.body) else {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        return write_response(writer, 400, "Bad Request", &[], "request body is not utf-8\n", keep)
            .is_ok();
    };
    // Same validator, same limits as the replicas: anything a replica
    // would 400, the router 400s without burning a backend attempt.
    let body = match parse_observe_body(text, ctx.config.limits) {
        Ok(b) => b,
        Err(e) => {
            m.requests_client_error.fetch_add(1, Ordering::Relaxed);
            return write_response(
                writer,
                400,
                "Bad Request",
                &[],
                &format!("invalid observe payload: {e}\n"),
                keep,
            )
            .is_ok();
        }
    };

    let fp = observe_fingerprint(body.id, body.start_time);
    let order = route_order(fp, ctx.replicas.len());
    let target = if req.query.is_empty() {
        "/observe".to_string()
    } else {
        format!("/observe?{}", req.query)
    };
    let Some((idx, addr)) = order.iter().find_map(|&i| ctx.replicas.routable(i).map(|a| (i, a)))
    else {
        m.no_backend.fetch_add(1, Ordering::Relaxed);
        return write_response(
            writer,
            503,
            "Service Unavailable",
            &[("Retry-After", "1")],
            "no live replicas\n",
            keep,
        )
        .is_ok();
    };

    match send_backend(&addr, "POST", &target, text, ctx.config.connect_timeout, ctx.config.deadline)
    {
        Ok(resp) => {
            ctx.replicas.record_success(idx);
            if resp.status == 200 {
                m.requests_ok.fetch_add(1, Ordering::Relaxed);
                let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                m.route_latency_us.record(us);
            } else {
                m.requests_client_error.fetch_add(1, Ordering::Relaxed);
            }
            relay(writer, &resp, keep)
        }
        Err(e) => {
            ctx.replicas.record_failure(idx);
            m.requests_shed.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                502,
                "Bad Gateway",
                &[],
                &format!("observe owner replica {idx} unreachable: {e}\n"),
                keep,
            )
            .is_ok()
        }
    }
}

/// `POST /predict`: fingerprint → rendezvous order → bounded, deadlined,
/// backoff-separated attempts down the failover sequence.
fn route_predict(req: &Request, ctx: &RouterCtx<'_>, writer: &mut impl io::Write) -> bool {
    let started = Instant::now();
    let keep = req.keep_alive;
    let m = ctx.metrics;

    let Ok(text) = std::str::from_utf8(&req.body) else {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        return write_response(writer, 400, "Bad Request", &[], "request body is not utf-8\n", keep)
            .is_ok();
    };
    // Same validator, same limits as the replicas: anything a replica
    // would 400, the router 400s without burning a backend attempt.
    let cascades = match parse_cascades(text, ctx.config.limits) {
        Ok(c) => c,
        Err(e) => {
            m.requests_client_error.fetch_add(1, Ordering::Relaxed);
            return write_response(
                writer,
                400,
                "Bad Request",
                &[],
                &format!("invalid cascade payload: {e}\n"),
                keep,
            )
            .is_ok();
        }
    };
    if cascades.is_empty() {
        m.requests_ok.fetch_add(1, Ordering::Relaxed);
        return write_response(writer, 200, "OK", &[], "", keep).is_ok();
    }

    let fp = payload_fingerprint(cascades.iter().map(cascade_key));
    let order = route_order(fp, ctx.replicas.len());
    let target = if req.query.is_empty() {
        "/predict".to_string()
    } else {
        format!("/predict?{}", req.query)
    };
    let deadline = started + ctx.config.deadline;

    let mut owner: Option<usize> = None;
    let mut last_shed: Option<BackendResponse> = None;
    let mut last_transport: Option<String> = None;
    let mut saw_backend = false;
    for attempt in 0..ctx.config.max_attempts.max(1) {
        // Re-resolve the candidate each attempt: the prober may have
        // ejected or recovered replicas while we were backing off.
        let candidates: Vec<(usize, String)> = order
            .iter()
            .filter_map(|&i| ctx.replicas.routable(i).map(|a| (i, a)))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let (idx, addr) = candidates[attempt % candidates.len()].clone();
        if owner.is_none() {
            owner = Some(idx);
        }
        saw_backend = true;
        if attempt > 0 {
            m.retries.fetch_add(1, Ordering::Relaxed);
        }

        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let remaining = deadline - now;
        let connect_budget = ctx.config.connect_timeout.min(remaining);
        // Split what's left of the deadline across the attempts still
        // available, so a backend that accepts and then stalls cannot eat
        // the whole budget on attempt one and leave failover no time.
        let attempts_left = (ctx.config.max_attempts.max(1) - attempt).max(1) as u32;
        let read_budget = remaining / attempts_left;
        let outcome = match send_backend(&addr, "POST", &target, text, connect_budget, read_budget) {
            Ok(resp) if resp.status == 503 => Err(AttemptError::Shed(resp)),
            Ok(resp) => Ok(resp),
            Err(e) => Err(AttemptError::Transport(e)),
        };
        match outcome {
            Ok(resp) => {
                ctx.replicas.record_success(idx);
                if owner != Some(idx) {
                    m.failovers.fetch_add(1, Ordering::Relaxed);
                }
                if resp.status == 200 {
                    m.requests_ok.fetch_add(1, Ordering::Relaxed);
                    let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    m.route_latency_us.record(us);
                } else {
                    m.requests_client_error.fetch_add(1, Ordering::Relaxed);
                }
                return relay(writer, &resp, keep);
            }
            Err(AttemptError::Shed(resp)) => {
                // Overload is not ill health: the replica stays closed in
                // the breaker, but the request tries its next choice.
                ctx.replicas.record_success(idx);
                last_shed = Some(resp);
            }
            Err(AttemptError::Transport(e)) => {
                ctx.replicas.record_failure(idx);
                last_transport = Some(e);
            }
        }
        // Jittered exponential backoff before the next attempt, clipped
        // to both the per-sleep cap and the remaining deadline.
        if attempt + 1 < ctx.config.max_attempts {
            let exp = ctx
                .config
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16) as u32)
                .min(ctx.config.backoff_cap);
            let sleep = (exp + ctx.jitter(ctx.config.backoff_base)).min(ctx.config.backoff_cap);
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if ctx.stop.wait(sleep.min(deadline - now)) {
                break;
            }
        }
    }

    // Nothing relayable: degrade gracefully with 503 + Retry-After. A
    // backend shed response is preferred over a synthetic body so the
    // client sees the most informative reason.
    m.requests_shed.fetch_add(1, Ordering::Relaxed);
    if !saw_backend {
        m.no_backend.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(shed) = last_shed {
        return relay(writer, &shed, keep);
    }
    let body = if !saw_backend {
        "no live replicas\n".to_string()
    } else if let Some(e) = last_transport {
        format!("no replica answered within the retry/deadline budget (last error: {e})\n")
    } else {
        "no replica answered within the retry/deadline budget\n".to_string()
    };
    write_response(writer, 503, "Service Unavailable", &[("Retry-After", "1")], &body, keep).is_ok()
}

/// Relays a backend response to the client byte-for-byte (status, reason,
/// `Retry-After`, body).
fn relay(writer: &mut impl io::Write, resp: &BackendResponse, keep: bool) -> bool {
    let extra: Vec<(&str, &str)> = match &resp.retry_after {
        Some(v) => vec![("Retry-After", v.as_str())],
        None => Vec::new(),
    };
    write_response(writer, resp.status, &resp.reason, &extra, &resp.body, keep).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_order_is_deterministic_and_minimally_disruptive() {
        let fp = 0xdead_beef_u64;
        let with3 = route_order(fp, 3);
        assert_eq!(with3, route_order(fp, 3), "same inputs, same order");
        assert_eq!(with3.len(), 3);
        // Dropping the non-owner replicas never changes an owner that
        // survives: the relative order of 0 and 1 with n=2 matches their
        // relative order with n=3.
        let with2 = route_order(fp, 2);
        let pos = |v: &[usize], x: usize| v.iter().position(|&i| i == x).unwrap();
        assert_eq!(
            pos(&with3, 0) < pos(&with3, 1),
            pos(&with2, 0) < pos(&with2, 1),
            "rendezvous keeps surviving replicas' relative ranks"
        );
    }

    #[test]
    fn payload_fingerprint_tracks_content() {
        assert_eq!(payload_fingerprint([1, 2]), payload_fingerprint([1, 2]));
        assert_ne!(payload_fingerprint([1, 2]), payload_fingerprint([2, 1]));
        assert_ne!(payload_fingerprint([1]), payload_fingerprint([1, 1]));
    }

    #[test]
    fn observe_affinity_is_identity_not_content() {
        // The same cascade keeps its rendezvous owner as it grows: the
        // fingerprint depends only on (id, start time), never on events.
        let fp = observe_fingerprint(42, 1.5);
        assert_eq!(fp, observe_fingerprint(42, 1.5));
        assert_eq!(route_order(fp, 5), route_order(observe_fingerprint(42, 1.5), 5));
        assert_ne!(fp, observe_fingerprint(43, 1.5));
        assert_ne!(fp, observe_fingerprint(42, 2.5));
    }

    #[test]
    fn circuit_breaker_walks_ejected_half_open_healthy() {
        let set = ReplicaSet::new(1, 2);
        set.set_addr(0, "127.0.0.1:1".into());
        assert_eq!(set.state(0), ReplicaState::Starting);
        assert!(set.routable(0).is_some(), "starting replicas take trial traffic");

        set.record_failure(0);
        assert_eq!(set.state(0), ReplicaState::Starting, "one failure is below threshold");
        set.record_failure(0);
        assert_eq!(set.state(0), ReplicaState::Ejected, "threshold ejects");
        assert!(set.routable(0).is_none(), "ejected replicas get no traffic");

        set.probe_result(0, true);
        assert_eq!(set.state(0), ReplicaState::HalfOpen, "probe success half-opens");
        assert!(set.routable(0).is_some(), "half-open replicas get trial traffic");
        set.record_failure(0);
        assert_eq!(set.state(0), ReplicaState::Ejected, "half-open fails straight back");

        set.probe_result(0, true);
        set.record_success(0);
        assert_eq!(set.state(0), ReplicaState::Healthy, "success closes the circuit");
        assert_eq!(set.live_count(), 1);
    }

    #[test]
    fn down_replicas_drop_their_address() {
        let set = ReplicaSet::with_backends(&["a:1".into(), "b:2".into()], 3);
        assert_eq!(set.len(), 2);
        set.mark_down(0);
        assert_eq!(set.state(0), ReplicaState::Down);
        assert_eq!(set.addr(0), None, "a dead process's port must not be probed");
        set.probe_result(0, false);
        assert_eq!(set.state(0), ReplicaState::Down, "probes cannot resurrect a dead slot");
        set.set_addr(0, "a:3".into());
        assert_eq!(set.state(0), ReplicaState::Starting, "restart re-enters via Starting");
        let views = set.views();
        assert_eq!(views[0].addr.as_deref(), Some("a:3"));
    }
}
