//! Lock-free serving metrics rendered as plain text.
//!
//! Counters and histograms are plain relaxed atomics — recording a sample
//! on the request path is a handful of `fetch_add`s, never a lock. The
//! `GET /metrics` endpoint renders everything in the conventional
//! `name{label="v"} value` line format so it is scrapable and greppable.
//!
//! Latencies land in log₂ microsecond buckets (1µs … ~67s); quantiles are
//! read back from the histogram by walking the cumulative counts and
//! reporting the upper bound of the bucket containing the quantile rank —
//! an overestimate by at most one bucket width, which is exactly the
//! resolution the histogram promises.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheStats;

/// Number of log₂ latency buckets: bucket `i` holds samples with
/// `us < 2^(i+1)`, the last bucket is a catch-all.
const LATENCY_BUCKETS: usize = 27;

/// Batch-size distribution buckets: `1, 2, 4, 8, …` cascades per batch.
const BATCH_BUCKETS: usize = 12;

fn log2_bucket(value: u64, buckets: usize) -> usize {
    let idx = (64 - value.max(1).leading_zeros()) as usize - 1;
    idx.min(buckets - 1)
}

/// A fixed-bucket log₂ histogram with a total-count and total-sum, enough
/// to report rates, means, and quantile bounds.
pub struct Histogram<const N: usize> {
    counts: [AtomicU64; N],
    total: AtomicU64,
    sum: AtomicU64,
}

impl<const N: usize> Histogram<N> {
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn record(&self, value: u64) {
        self.counts[log2_bucket(value, N)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 with no samples.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << N
    }

    fn snapshot(&self) -> ([u64; N], u64, u64) {
        (
            std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            self.total(),
            self.sum.load(Ordering::Relaxed),
        )
    }
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Self::new()
    }
}

/// All serving counters, shared across workers behind one `Arc`.
#[derive(Default)]
pub struct ServeMetrics {
    /// Requests answered, by coarse class.
    pub requests_ok: AtomicU64,
    pub requests_client_error: AtomicU64,
    pub requests_shed: AtomicU64,
    /// Connections closed with `408` because a read timed out (idle
    /// keep-alive peers and trickling senders).
    pub connections_timed_out: AtomicU64,
    /// Individual cascade predictions served.
    pub predictions: AtomicU64,
    /// Batches whose execution panicked; every slot in the batch was
    /// aborted with 503 instead of hanging.
    pub batch_panics: AtomicU64,
    /// Model hot-reloads that succeeded / failed.
    pub reloads_ok: AtomicU64,
    pub reloads_failed: AtomicU64,
    /// Spectral-cache snapshot saves that succeeded / failed.
    pub snapshot_saves_ok: AtomicU64,
    pub snapshot_saves_failed: AtomicU64,
    /// Startup snapshot-load outcome, incremented exactly once per boot:
    /// `warm` (entries restored), `cold_missing` (no snapshot file), or
    /// `cold_rejected` (truncated/corrupt/version-skewed/foreign snapshot
    /// refused — a clean cold start, never a panic).
    pub snapshot_load_warm: AtomicU64,
    pub snapshot_load_cold_missing: AtomicU64,
    pub snapshot_load_cold_rejected: AtomicU64,
    /// Adoption events accepted through `POST /observe`.
    pub observe_events: AtomicU64,
    /// Incremental spectral refreshes triggered by observed events and
    /// window crossings (events beyond the window reuse state untouched).
    pub observe_refreshes: AtomicU64,
    /// End-to-end `POST /predict` latency, microseconds.
    pub predict_latency_us: Histogram<LATENCY_BUCKETS>,
    /// End-to-end `POST /predict_next` latency, microseconds.
    pub predict_next_latency_us: Histogram<LATENCY_BUCKETS>,
    /// End-to-end `POST /observe` latency, microseconds.
    pub observe_latency_us: Histogram<LATENCY_BUCKETS>,
    /// Cascades per executed micro-batch.
    pub batch_size: Histogram<BATCH_BUCKETS>,
}

/// Renders one histogram in the Prometheus convention: **cumulative**
/// per-bucket counts with inclusive `le` upper bounds, closed by an
/// `le="+Inf"` bucket, plus `_count`/`_sum`. Bucket `i` holds integer
/// samples in `[2^i, 2^(i+1) - 1]`, so its inclusive bound is
/// `2^(i+1) - 1`; the top catch-all bucket has no finite bound and only
/// surfaces through `+Inf`. `_count` and `+Inf` come from the bucket sum
/// (not the separate total counter) so a scrape racing `record` stays
/// internally consistent.
fn render_histogram<const N: usize>(out: &mut String, name: &str, h: &Histogram<N>) {
    let (counts, _, sum) = h.snapshot();
    let total: u64 = counts.iter().sum();
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate().take(N - 1) {
        cumulative += c;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", (1u64 << (i + 1)) - 1);
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
    let _ = writeln!(out, "{name}_count {total}");
    let _ = writeln!(out, "{name}_sum {sum}");
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders every metric as `cascn_*` plain-text lines. `cache`, `live`
    /// and `model_version` are owned elsewhere and passed in for the
    /// snapshot.
    pub fn render(&self, cache: &CacheStats, live: &crate::live::LiveStats, model_version: u64) -> String {
        let mut out = String::with_capacity(1024);
        fn line(out: &mut String, name: &str, value: impl std::fmt::Display) {
            let _ = writeln!(out, "{name} {value}");
        }
        line(&mut out, "cascn_model_version", model_version);
        line(&mut out, "cascn_requests_total{class=\"ok\"}", self.requests_ok.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_requests_total{class=\"client_error\"}",
            self.requests_client_error.load(Ordering::Relaxed),
        );
        line(&mut out, "cascn_requests_total{class=\"shed\"}", self.requests_shed.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_connections_timed_out_total",
            self.connections_timed_out.load(Ordering::Relaxed),
        );
        line(&mut out, "cascn_predictions_total", self.predictions.load(Ordering::Relaxed));
        line(&mut out, "cascn_batch_panics_total", self.batch_panics.load(Ordering::Relaxed));
        line(&mut out, "cascn_model_reloads_total{result=\"ok\"}", self.reloads_ok.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_model_reloads_total{result=\"failed\"}",
            self.reloads_failed.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_snapshot_saves_total{result=\"ok\"}",
            self.snapshot_saves_ok.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_snapshot_saves_total{result=\"failed\"}",
            self.snapshot_saves_failed.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_snapshot_load{result=\"warm\"}",
            self.snapshot_load_warm.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_snapshot_load{result=\"cold_missing\"}",
            self.snapshot_load_cold_missing.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_snapshot_load{result=\"cold_rejected\"}",
            self.snapshot_load_cold_rejected.load(Ordering::Relaxed),
        );

        line(&mut out, "cascn_spectral_cache_hits_total", cache.hits);
        line(&mut out, "cascn_spectral_cache_misses_total", cache.misses);
        line(&mut out, "cascn_spectral_cache_evictions_total", cache.evictions);
        line(&mut out, "cascn_spectral_cache_collisions_total", cache.collisions);
        line(&mut out, "cascn_spectral_cache_warm_hits_total", cache.warm_hits);
        line(&mut out, "cascn_spectral_cache_entries", cache.entries);
        line(&mut out, "cascn_spectral_cache_warm_entries", cache.warm_entries);
        line(&mut out, "cascn_spectral_cache_bytes", cache.approx_bytes);
        line(&mut out, "cascn_spectral_cache_hit_rate", format!("{:.4}", cache.hit_rate()));

        line(&mut out, "cascn_observe_events_total", self.observe_events.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_observe_refreshes_total",
            self.observe_refreshes.load(Ordering::Relaxed),
        );
        line(&mut out, "cascn_live_cascades", live.entries);
        line(&mut out, "cascn_live_events", live.events);
        line(&mut out, "cascn_live_evictions_total", live.evictions);
        line(&mut out, "cascn_live_warm_fallbacks_total", live.warm_fallbacks);
        line(&mut out, "cascn_live_bytes", live.approx_bytes);

        render_histogram(&mut out, "cascn_predict_latency_us", &self.predict_latency_us);
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "cascn_predict_latency_us{{quantile=\"{label}\"}} {}",
                self.predict_latency_us.quantile_upper_bound(q)
            );
        }

        render_histogram(&mut out, "cascn_predict_next_latency_us", &self.predict_next_latency_us);
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "cascn_predict_next_latency_us{{quantile=\"{label}\"}} {}",
                self.predict_next_latency_us.quantile_upper_bound(q)
            );
        }

        render_histogram(&mut out, "cascn_observe_latency_us", &self.observe_latency_us);
        render_histogram(&mut out, "cascn_batch_size", &self.batch_size);

        out
    }
}

/// Tier-health counters for the failover router, rendered on the router's
/// own `GET /metrics` in the same Prometheus-convention plain text as
/// [`ServeMetrics`].
#[derive(Default)]
pub struct RouterMetrics {
    /// Client requests relayed with a backend's answer.
    pub requests_ok: AtomicU64,
    /// Requests the router itself rejected as malformed.
    pub requests_client_error: AtomicU64,
    /// Requests answered `503 Retry-After` because no attempt succeeded
    /// within the retry/deadline budget.
    pub requests_shed: AtomicU64,
    /// Requests that arrived while zero replicas were routable.
    pub no_backend: AtomicU64,
    /// Backend attempts beyond the first, across all requests.
    pub retries: AtomicU64,
    /// Requests answered by a replica other than their hash owner.
    pub failovers: AtomicU64,
    /// Health probes by outcome.
    pub probes_ok: AtomicU64,
    pub probes_failed: AtomicU64,
    /// Replica processes restarted by the supervisor.
    pub restarts: AtomicU64,
    /// End-to-end routed `POST /predict` latency, microseconds.
    pub route_latency_us: Histogram<LATENCY_BUCKETS>,
}

impl RouterMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders every router metric plus per-replica state gauges.
    /// `replicas` is the routing table's point-in-time view; states encode
    /// as `0`=down `1`=starting `2`=ejected `3`=half_open `4`=healthy.
    pub fn render(&self, replicas: &[crate::router::ReplicaView]) -> String {
        use crate::router::ReplicaState;
        let mut out = String::with_capacity(1024);
        fn line(out: &mut String, name: &str, value: impl std::fmt::Display) {
            let _ = writeln!(out, "{name} {value}");
        }
        line(&mut out, "cascn_router_replicas", replicas.len());
        let live = replicas
            .iter()
            .filter(|r| matches!(r.state, ReplicaState::Healthy | ReplicaState::HalfOpen))
            .count();
        line(&mut out, "cascn_router_replicas_live", live);
        for r in replicas {
            let code = match r.state {
                ReplicaState::Down => 0,
                ReplicaState::Starting => 1,
                ReplicaState::Ejected => 2,
                ReplicaState::HalfOpen => 3,
                ReplicaState::Healthy => 4,
            };
            let _ = writeln!(out, "cascn_router_replica_state{{replica=\"{}\"}} {code}", r.index);
            let _ = writeln!(
                out,
                "cascn_router_replica_restarts_total{{replica=\"{}\"}} {}",
                r.index, r.restarts
            );
        }
        line(&mut out, "cascn_router_requests_total{class=\"ok\"}", self.requests_ok.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_router_requests_total{class=\"client_error\"}",
            self.requests_client_error.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cascn_router_requests_total{class=\"shed\"}",
            self.requests_shed.load(Ordering::Relaxed),
        );
        line(&mut out, "cascn_router_no_backend_total", self.no_backend.load(Ordering::Relaxed));
        line(&mut out, "cascn_router_retries_total", self.retries.load(Ordering::Relaxed));
        line(&mut out, "cascn_router_failovers_total", self.failovers.load(Ordering::Relaxed));
        line(&mut out, "cascn_router_probes_total{result=\"ok\"}", self.probes_ok.load(Ordering::Relaxed));
        line(
            &mut out,
            "cascn_router_probes_total{result=\"failed\"}",
            self.probes_failed.load(Ordering::Relaxed),
        );
        line(&mut out, "cascn_router_restarts_total", self.restarts.load(Ordering::Relaxed));
        render_histogram(&mut out, "cascn_router_latency_us", &self.route_latency_us);
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "cascn_router_latency_us{{quantile=\"{label}\"}} {}",
                self.route_latency_us.quantile_upper_bound(q)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ReplicaState, ReplicaView};

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(log2_bucket(0, 27), 0);
        assert_eq!(log2_bucket(1, 27), 0);
        assert_eq!(log2_bucket(2, 27), 1);
        assert_eq!(log2_bucket(3, 27), 1);
        assert_eq!(log2_bucket(1024, 27), 10);
        assert_eq!(log2_bucket(u64::MAX, 27), 26, "clamped to the catch-all");
    }

    #[test]
    fn quantiles_bound_the_recorded_samples() {
        let h: Histogram<27> = Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0, "empty histogram");
        for us in [10, 20, 30, 40, 1000] {
            h.record(us);
        }
        let p50 = h.quantile_upper_bound(0.5);
        // The median sample (30µs) lives in the 16..32 bucket → bound 32.
        assert_eq!(p50, 32);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p99 >= 1024, "p99 must cover the 1000µs outlier, got {p99}");
    }

    #[test]
    fn render_contains_the_scrape_contract() {
        let m = ServeMetrics::new();
        m.requests_ok.fetch_add(3, Ordering::Relaxed);
        m.predict_latency_us.record(100);
        m.batch_size.record(4);
        m.snapshot_load_warm.fetch_add(1, Ordering::Relaxed);
        m.observe_events.fetch_add(6, Ordering::Relaxed);
        m.observe_refreshes.fetch_add(4, Ordering::Relaxed);
        m.observe_latency_us.record(50);
        let cache = CacheStats {
            hits: 9,
            misses: 1,
            evictions: 0,
            collisions: 0,
            warm_hits: 5,
            entries: 1,
            warm_entries: 1,
            approx_bytes: 64,
        };
        let live = crate::live::LiveStats {
            entries: 2,
            evictions: 1,
            events: 11,
            warm_fallbacks: 0,
            approx_bytes: 256,
        };
        let text = m.render(&cache, &live, 2);
        for needle in [
            "cascn_observe_events_total 6",
            "cascn_observe_refreshes_total 4",
            "cascn_live_cascades 2",
            "cascn_live_events 11",
            "cascn_live_evictions_total 1",
            "cascn_live_warm_fallbacks_total 0",
            "cascn_live_bytes 256",
            "cascn_observe_latency_us_count 1",
            "cascn_model_version 2",
            "cascn_requests_total{class=\"ok\"} 3",
            "cascn_connections_timed_out_total 0",
            "cascn_batch_panics_total 0",
            "cascn_snapshot_saves_total{result=\"ok\"} 0",
            "cascn_snapshot_load{result=\"warm\"} 1",
            "cascn_snapshot_load{result=\"cold_missing\"} 0",
            "cascn_spectral_cache_hits_total 9",
            "cascn_spectral_cache_collisions_total 0",
            "cascn_spectral_cache_warm_hits_total 5",
            "cascn_spectral_cache_warm_entries 1",
            "cascn_spectral_cache_hit_rate 0.9000",
            "cascn_predict_latency_us_bucket{le=\"+Inf\"} 1",
            "cascn_predict_latency_us{quantile=\"0.5\"}",
            "cascn_predict_latency_us{quantile=\"0.99\"}",
            "cascn_predict_next_latency_us_count 0",
            "cascn_predict_next_latency_us{quantile=\"0.99\"}",
            "cascn_batch_size_bucket{le=\"+Inf\"} 1",
            "cascn_batch_size_count 1",
            "cascn_batch_size_sum 4",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let m = ServeMetrics::new();
        for us in [1, 1, 100] {
            m.predict_latency_us.record(us);
        }
        let cache = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
            warm_hits: 0,
            entries: 0,
            warm_entries: 0,
            approx_bytes: 0,
        };
        let text = m.render(&cache, &crate::live::LiveStats::default(), 1);
        // The two 1µs samples sit in the first bucket (le="1"); the 100µs
        // sample lands in [64, 127]. Every bucket from there up, and
        // +Inf, must carry the full cumulative count — the Prometheus
        // histogram convention a scraper computes quantiles from.
        for needle in [
            "cascn_predict_latency_us_bucket{le=\"1\"} 2",
            "cascn_predict_latency_us_bucket{le=\"63\"} 2",
            "cascn_predict_latency_us_bucket{le=\"127\"} 3",
            "cascn_predict_latency_us_bucket{le=\"255\"} 3",
            "cascn_predict_latency_us_bucket{le=\"+Inf\"} 3",
            "cascn_predict_latency_us_count 3",
            "cascn_predict_latency_us_sum 102",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn router_render_reports_per_replica_state_and_counters() {
        let m = RouterMetrics::new();
        m.requests_ok.fetch_add(7, Ordering::Relaxed);
        m.retries.fetch_add(2, Ordering::Relaxed);
        m.failovers.fetch_add(1, Ordering::Relaxed);
        m.restarts.fetch_add(1, Ordering::Relaxed);
        m.route_latency_us.record(500);
        let replicas = vec![
            ReplicaView { index: 0, state: ReplicaState::Healthy, addr: Some("a".into()), restarts: 0 },
            ReplicaView { index: 1, state: ReplicaState::Ejected, addr: Some("b".into()), restarts: 1 },
            ReplicaView { index: 2, state: ReplicaState::Down, addr: None, restarts: 2 },
        ];
        let text = m.render(&replicas);
        for needle in [
            "cascn_router_replicas 3",
            "cascn_router_replicas_live 1",
            "cascn_router_replica_state{replica=\"0\"} 4",
            "cascn_router_replica_state{replica=\"1\"} 2",
            "cascn_router_replica_state{replica=\"2\"} 0",
            "cascn_router_replica_restarts_total{replica=\"1\"} 1",
            "cascn_router_requests_total{class=\"ok\"} 7",
            "cascn_router_retries_total 2",
            "cascn_router_failovers_total 1",
            "cascn_router_restarts_total 1",
            "cascn_router_latency_us_count 1",
            "cascn_router_latency_us{quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
