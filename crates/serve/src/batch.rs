//! The micro-batcher: coalesces concurrent predict requests into one
//! batched forward pass.
//!
//! Connection workers parse requests and enqueue [`PredictJob`]s; a single
//! executor thread drains the queue, flattens every queued cascade into
//! one batch, and fans the forward passes across the model's worker pool
//! ([`cascn::parallel_map`] — the same primitive offline evaluation uses).
//! While a batch executes, new requests pile up behind it, so bursty load
//! naturally produces larger batches and an idle server answers a lone
//! request with a batch of one.
//!
//! The queue is bounded in *cascades*, not requests: a request whose
//! cascades would overflow the bound is shed atomically (all or nothing)
//! with `503 Retry-After`, never partially enqueued.
//!
//! Per cascade, the executor runs the cache-aware split pipeline:
//! spectral basis from the [`BasisCache`] (content-fingerprinted *and*
//! verified bit-for-bit on every hit, so neither a reused id nor a
//! fingerprint collision can ever alias), then
//! [`cascn::preprocess_with_basis`] + `predict_log_sample` — bit-identical
//! to `CascnModel::predict_log` on the same cascade.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use cascn::{parallel_map, preprocess_with_basis, spectral_basis};
use cascn_cascades::Cascade;

use crate::cache::BasisCache;
pub use crate::cache::cascade_key;
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use crate::sync::{lock_recover, wait_recover};

/// What the executor computes per cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Macroscopic `POST /predict`: the predicted log-increment.
    SizeLog,
    /// Microscopic `POST /predict_next`: the top-`k` next adopters, with
    /// already-infected users masked out.
    NextUser {
        /// How many `(user, probability)` pairs to return per cascade.
        k: usize,
    },
}

/// One per-cascade result, matching the job's [`JobKind`].
#[derive(Debug, Clone)]
pub enum PredictOutput {
    /// `JobKind::SizeLog` result.
    Log(f32),
    /// `JobKind::NextUser` result: `(user, probability)` by rank.
    TopK(Vec<(u64, f32)>),
}

/// Where a request waits for its batch to execute.
enum SlotState {
    Pending,
    Done(Vec<PredictOutput>),
    Aborted(String),
}

/// A one-shot rendezvous between the connection worker and the executor.
pub struct ResponseSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl ResponseSlot {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    fn fulfill(&self, preds: Vec<PredictOutput>) {
        let mut state = lock_recover(&self.state);
        *state = SlotState::Done(preds);
        self.cv.notify_all();
    }

    fn abort(&self, reason: String) {
        let mut state = lock_recover(&self.state);
        *state = SlotState::Aborted(reason);
        self.cv.notify_all();
    }

    /// Blocks until the executor fulfills or aborts this slot.
    pub fn wait(&self) -> Result<Vec<PredictOutput>, String> {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                SlotState::Pending => {
                    state = wait_recover(&self.cv, state);
                }
                SlotState::Done(preds) => return Ok(preds.clone()),
                SlotState::Aborted(reason) => return Err(reason.clone()),
            }
        }
    }
}

/// One queued predict request: its cascades, window, what to compute per
/// cascade, and the response slot.
pub struct PredictJob {
    pub cascades: Vec<Cascade>,
    pub window: f64,
    pub kind: JobKind,
    pub slot: Arc<ResponseSlot>,
}

/// Why a job was not enqueued.
#[derive(Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// Queue bound exceeded — shed with `503 Retry-After`.
    Overloaded { queued: usize, limit: usize },
    /// The server is shutting down.
    Closed,
}

struct Queue {
    jobs: VecDeque<PredictJob>,
    /// Total cascades across `jobs` — the bounded quantity.
    queued_cascades: usize,
    closed: bool,
}

/// The bounded job queue plus its executor entry point.
pub struct Batcher {
    queue: Mutex<Queue>,
    cv: Condvar,
    /// Max cascades drained into one executed batch.
    max_batch: usize,
    /// Max cascades waiting in the queue; beyond this, requests shed.
    max_queue: usize,
}

impl Batcher {
    pub fn new(max_batch: usize, max_queue: usize) -> Self {
        Self {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                queued_cascades: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            max_batch: max_batch.max(1),
            max_queue: max_queue.max(1),
        }
    }

    /// Admits `job` or sheds it atomically. A job larger than the whole
    /// queue bound is only admitted into an empty queue (otherwise it
    /// could never run).
    pub fn enqueue(&self, job: PredictJob) -> Result<(), EnqueueError> {
        let mut q = lock_recover(&self.queue);
        if q.closed {
            return Err(EnqueueError::Closed);
        }
        let incoming = job.cascades.len();
        if q.queued_cascades > 0 && q.queued_cascades + incoming > self.max_queue {
            return Err(EnqueueError::Overloaded {
                queued: q.queued_cascades,
                limit: self.max_queue,
            });
        }
        q.queued_cascades += incoming;
        q.jobs.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Marks the queue closed and aborts everything still waiting.
    pub fn close(&self) {
        let mut q = lock_recover(&self.queue);
        q.closed = true;
        for job in q.jobs.drain(..) {
            job.slot.abort("server shutting down".into());
        }
        q.queued_cascades = 0;
        self.cv.notify_all();
    }

    /// Blocks until jobs are available (returning a drained batch of at
    /// most `max_batch` cascades) or the queue closes (returning `None`).
    fn next_batch(&self) -> Option<Vec<PredictJob>> {
        let mut q = lock_recover(&self.queue);
        loop {
            if !q.jobs.is_empty() {
                let mut batch = Vec::new();
                let mut cascades = 0usize;
                while let Some(job) = q.jobs.front() {
                    let n = job.cascades.len();
                    // Always take at least one job; stop before overflowing
                    // the batch bound otherwise.
                    if !batch.is_empty() && cascades + n > self.max_batch {
                        break;
                    }
                    cascades += n;
                    q.queued_cascades -= n;
                    batch.extend(q.jobs.pop_front());
                    if cascades >= self.max_batch {
                        break;
                    }
                }
                return Some(batch);
            }
            if q.closed {
                return None;
            }
            q = wait_recover(&self.cv, q);
        }
    }

    /// The executor loop: drain → one batched forward pass → fulfill.
    /// Runs until [`close`](Self::close); call from a dedicated thread.
    /// `threads` sets the intra-batch fan-out (`0` = all cores).
    pub fn run_executor(
        &self,
        registry: &ModelRegistry,
        cache: &BasisCache,
        metrics: &ServeMetrics,
        threads: usize,
    ) {
        while let Some(jobs) = self.next_batch() {
            let flat: Vec<(usize, usize)> = jobs
                .iter()
                .enumerate()
                .flat_map(|(j, job)| (0..job.cascades.len()).map(move |c| (j, c)))
                .collect();
            metrics.batch_size.record(flat.len() as u64);

            // A panic must not cross the batch boundary: request-derived
            // input reaches the spectral/forward code here, and an
            // unwinding executor would strand every waiting slot in
            // Pending forever and hang all future predicts. `parallel_map`
            // re-raises worker panics on scope exit, so this catches
            // fan-out panics too.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // One registry read per batch: every cascade in the batch
                // is served by the same model version.
                let loaded = registry.current();
                let cfg = loaded.model.config();
                parallel_map(threads, &flat, |_, &(j, c)| {
                    let job = &jobs[j];
                    let cascade = &job.cascades[c];
                    let basis = cache.get_or_insert_with(cascade, job.window, || {
                        spectral_basis(cascade, job.window, cfg)
                    });
                    let sample = preprocess_with_basis(cascade, job.window, cfg, &basis);
                    match job.kind {
                        JobKind::SizeLog => {
                            PredictOutput::Log(loaded.model.predict_log_sample(&sample))
                        }
                        JobKind::NextUser { k } => {
                            let observed: Vec<u64> = cascade.observe(job.window).users();
                            PredictOutput::TopK(
                                loaded.model.predict_next_sample(&sample, &observed, k),
                            )
                        }
                    }
                })
            }));
            match outcome {
                Ok(preds) => {
                    metrics.predictions.fetch_add(flat.len() as u64, Ordering::Relaxed);
                    let mut preds = preds.into_iter();
                    for job in jobs {
                        let take: Vec<PredictOutput> =
                            preds.by_ref().take(job.cascades.len()).collect();
                        job.slot.fulfill(take);
                    }
                }
                Err(_) => {
                    metrics.batch_panics.fetch_add(1, Ordering::Relaxed);
                    for job in &jobs {
                        job.slot.abort("internal error: batch execution failed".into());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::Event;

    fn cascade(id: u64, n: usize) -> Cascade {
        let mut events = vec![Event { user: 0, parent: None, time: 0.0 }];
        for i in 1..n {
            events.push(Event { user: i as u64, parent: Some(0), time: i as f64 });
        }
        Cascade::new(id, 0.0, events)
    }

    fn job(n_cascades: usize) -> (PredictJob, Arc<ResponseSlot>) {
        let slot = ResponseSlot::new();
        let cascades = (0..n_cascades).map(|i| cascade(i as u64, 3)).collect();
        let job = PredictJob {
            cascades,
            window: 10.0,
            kind: JobKind::SizeLog,
            slot: Arc::clone(&slot),
        };
        (job, slot)
    }

    #[test]
    fn queue_bound_sheds_whole_requests() {
        let b = Batcher::new(8, 4);
        let (j1, _s1) = job(3);
        assert!(b.enqueue(j1).is_ok());
        // 3 queued; +2 would exceed 4 → shed atomically.
        let (j2, _s2) = job(2);
        match b.enqueue(j2) {
            Err(EnqueueError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (3, 4));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // +1 still fits.
        let (j3, _s3) = job(1);
        assert!(b.enqueue(j3).is_ok());
    }

    #[test]
    fn oversized_job_is_admitted_only_into_an_empty_queue() {
        let b = Batcher::new(8, 4);
        let (huge, _s) = job(6);
        assert!(b.enqueue(huge).is_ok(), "empty queue must accept an oversized job");
        let (next, _s2) = job(1);
        assert!(matches!(b.enqueue(next), Err(EnqueueError::Overloaded { .. })));
    }

    #[test]
    fn next_batch_coalesces_and_respects_the_bound() {
        let b = Batcher::new(4, 100);
        let slots: Vec<_> = (0..3).map(|_| job(2)).collect();
        for (j, _) in slots {
            b.enqueue(j).unwrap();
        }
        let first = b.next_batch().expect("jobs queued");
        assert_eq!(first.len(), 2, "2+2 fills the 4-cascade batch bound");
        let second = b.next_batch().expect("one job left");
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn close_aborts_waiters_and_rejects_new_jobs() {
        let b = Batcher::new(8, 8);
        let (j, slot) = job(1);
        b.enqueue(j).unwrap();
        b.close();
        assert_eq!(slot.wait().unwrap_err(), "server shutting down");
        let (j2, _s) = job(1);
        assert_eq!(b.enqueue(j2), Err(EnqueueError::Closed));
        assert!(b.next_batch().is_none(), "closed and drained");
    }
}
