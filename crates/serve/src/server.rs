//! The TCP accept loop, worker pool, and request routing.
//!
//! Thread shape: the caller's thread runs `accept()`; a fixed pool of
//! connection workers drains a bounded connection queue; one executor
//! thread drains the [`Batcher`]. Everything is a scoped `std::thread` —
//! no runtime, no globals — and shuts down cleanly when a `POST /shutdown`
//! flips the run flag and nudges the accept loop awake with a loopback
//! connection.
//!
//! Routes:
//!
//! | route                      | behavior                                   |
//! |----------------------------|--------------------------------------------|
//! | `GET /healthz`             | liveness probe                             |
//! | `GET /metrics`             | plain-text counters and histograms         |
//! | `POST /predict?window=W`   | cascade text body → `prediction <id> <ŷ>`  |
//! | `POST /predict_next?k=K`   | cascade text body → `next <id> <u> <p> …`  |
//! |                            | (next-user checkpoints only; infected      |
//! |                            | users are masked out of the ranking)       |
//! | `POST /observe?window=W`   | append events to a live cascade, keep its  |
//! |                            | incremental spectral basis warm            |
//! | `POST /reload`             | re-read the checkpoint, bump the version   |
//! | `POST /snapshot`           | persist the spectral cache to disk now     |
//! | `POST /shutdown`           | graceful stop (also saves a snapshot)      |
//!
//! Predictions are formatted with `{:?}` so the decimal text round-trips
//! to the exact `f32` the model produced — served output is bit-identical
//! to a direct `predict_log` call on the same checkpoint.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cascn::resolve_threads;
use cascn_cascades::stream::{parse_cascades, parse_observe_body, StreamLimits};

use crate::batch::{Batcher, EnqueueError, JobKind, PredictJob, PredictOutput, ResponseSlot};
use crate::cache::BasisCache;
use crate::http::{read_request, write_response, ParseError, Request};
use crate::live::{LiveRegistry, ObserveError};
use crate::metrics::ServeMetrics;
use crate::persist;
use crate::registry::ModelRegistry;
use crate::router::ShutdownSignal;
use crate::sync::{lock_recover, wait_recover};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8077` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Connection workers. `0` (auto) = one per core but at least 4: a
    /// worker holds its socket for the life of a keep-alive connection,
    /// and the floor keeps one chatty client from starving the rest on
    /// small machines. Workers block on I/O; the forward pass runs on the
    /// batch executor, so extra workers cost memory, not compute.
    pub workers: usize,
    /// Intra-batch forward-pass fan-out (`0` = all cores).
    pub threads: usize,
    /// Max cascades coalesced into one executed batch.
    pub max_batch: usize,
    /// Max cascades queued before requests shed with 503.
    pub max_queue: usize,
    /// Max `Content-Length` accepted on `POST /predict`.
    pub max_body_bytes: usize,
    /// Spectral-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Window used when a predict request has no `?window=` param.
    pub default_window: f64,
    /// Socket read timeout, bounding how long a worker can sit in a
    /// blocking read. An idle keep-alive peer or a trickling (slowloris)
    /// sender is answered with `408` and disconnected when it elapses —
    /// so slow clients cannot pin the whole worker pool, and shutdown
    /// never waits longer than this for workers parked on silent
    /// connections. `None` disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Per-request cascade/event caps enforced by the streaming parser.
    pub limits: StreamLimits,
    /// Spectral-cache snapshot file. When set, the server warm-starts
    /// from it at bind (rejecting corrupt or foreign snapshots as clean
    /// cold starts), saves to it on `POST /snapshot` and at shutdown, and
    /// — with `snapshot_interval` — on a cadence. `None` disables
    /// persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Cadence of the background snapshot saver. `None` = save only on
    /// demand and at shutdown.
    pub snapshot_interval: Option<Duration>,
    /// Live-cascade registry capacity for `POST /observe` (`0` disables
    /// streaming ingestion).
    pub live_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            threads: 0,
            max_batch: 64,
            max_queue: 256,
            max_body_bytes: 1 << 20,
            cache_capacity: 1024,
            default_window: 25.0,
            read_timeout: Some(Duration::from_secs(5)),
            limits: StreamLimits::default(),
            snapshot_path: None,
            snapshot_interval: None,
            live_capacity: 256,
        }
    }
}

/// Bounded handoff of accepted sockets to the worker pool. Shared with
/// the router front-end, which has the same accept/worker shape.
pub(crate) struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
    bound: usize,
}

impl ConnQueue {
    pub(crate) fn new(bound: usize) -> Self {
        Self {
            queue: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// Hands the stream back when the queue is full (the caller sheds).
    pub(crate) fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = lock_recover(&self.queue);
        if q.1 || q.0.len() >= self.bound {
            return Err(stream);
        }
        q.0.push_back(stream);
        self.cv.notify_one();
        Ok(())
    }

    pub(crate) fn pop(&self) -> Option<TcpStream> {
        let mut q = lock_recover(&self.queue);
        loop {
            if let Some(s) = q.0.pop_front() {
                return Some(s);
            }
            if q.1 {
                return None;
            }
            q = wait_recover(&self.cv, q);
        }
    }

    pub(crate) fn close(&self) {
        let mut q = lock_recover(&self.queue);
        q.1 = true;
        self.cv.notify_all();
    }
}

/// A bound-but-not-yet-running server. Splitting bind from run lets the
/// caller learn the ephemeral port before serving starts.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    registry: Arc<ModelRegistry>,
    pub metrics: Arc<ServeMetrics>,
    pub cache: Arc<BasisCache>,
    pub live: Arc<LiveRegistry>,
    batcher: Arc<Batcher>,
    snapshot: Option<SnapshotCtx>,
}

/// Where and under which basis fingerprint this server persists its
/// spectral cache.
struct SnapshotCtx {
    path: PathBuf,
    fp: u64,
}

impl SnapshotCtx {
    /// Exports the cache and the live registry and writes them atomically.
    /// Returns the number of cache entries saved; every outcome is counted
    /// on `metrics`.
    fn save(
        &self,
        cache: &BasisCache,
        live: &LiveRegistry,
        metrics: &ServeMetrics,
    ) -> Result<usize, String> {
        let entries = cache.export();
        let live_entries = live.export();
        match persist::save_snapshot(&self.path, &entries, &live_entries, self.fp) {
            Ok(()) => {
                metrics.snapshot_saves_ok.fetch_add(1, Ordering::Relaxed);
                Ok(entries.len())
            }
            Err(e) => {
                metrics.snapshot_saves_failed.fetch_add(1, Ordering::Relaxed);
                Err(format!("saving snapshot {}: {e}", self.path.display()))
            }
        }
    }
}

impl Server {
    /// Binds the listen socket. The model is already loaded (the registry
    /// rejects corrupt checkpoints before any socket exists). When
    /// snapshot persistence is configured, the spectral cache warm-starts
    /// here — before the first request — and any unreadable snapshot is a
    /// logged cold start, never a startup failure.
    pub fn bind(config: ServerConfig, registry: ModelRegistry) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let batcher = Arc::new(Batcher::new(config.max_batch, config.max_queue));
        let cache = Arc::new(BasisCache::new(config.cache_capacity));
        let live = Arc::new(LiveRegistry::new(config.live_capacity));
        let metrics = Arc::new(ServeMetrics::new());
        let snapshot = config.snapshot_path.clone().map(|path| SnapshotCtx {
            fp: persist::basis_fingerprint(registry.config()),
            path,
        });
        if let Some(snap) = &snapshot {
            match persist::load_snapshot(&snap.path, snap.fp) {
                Ok(Some((entries, live_entries))) => {
                    let n = cache.seed(entries);
                    let l = live.seed(live_entries, registry.config());
                    metrics.snapshot_load_warm.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "snapshot: warm start, {n} entries + {l} live cascades from {}",
                        snap.path.display()
                    );
                }
                Ok(None) => {
                    metrics.snapshot_load_cold_missing.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    metrics.snapshot_load_cold_rejected.fetch_add(1, Ordering::Relaxed);
                    eprintln!("snapshot: cold start, {} rejected: {e}", snap.path.display());
                }
            }
        }
        Ok(Self {
            listener,
            local_addr,
            cache,
            live,
            metrics,
            batcher,
            registry: Arc::new(registry),
            snapshot,
            config,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `POST /shutdown` arrives. Blocks the calling thread;
    /// workers and the batch executor run as scoped threads inside.
    pub fn run(self) -> io::Result<()> {
        let workers = if self.config.workers == 0 {
            resolve_threads(0).max(4)
        } else {
            self.config.workers
        };
        let running = AtomicBool::new(true);
        let conns = ConnQueue::new(workers * 2);
        let stop = ShutdownSignal::new();
        let Self {
            listener,
            local_addr,
            config,
            registry,
            metrics,
            cache,
            live,
            batcher,
            snapshot,
        } = self;

        std::thread::scope(|s| {
            s.spawn(|| batcher.run_executor(&registry, &cache, &metrics, config.threads));
            if let (Some(snap), Some(interval)) = (&snapshot, config.snapshot_interval) {
                // Periodic saver: bounds how much warmth a crash can lose
                // to one interval. The latch makes shutdown immediate.
                let (stop, cache, live, metrics) = (&stop, &cache, &live, &metrics);
                s.spawn(move || loop {
                    if stop.wait(interval) {
                        return;
                    }
                    if let Err(e) = snap.save(cache, live, metrics) {
                        eprintln!("snapshot: {e}");
                    }
                });
            }
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(stream) = conns.pop() {
                        let ctx = HandlerCtx {
                            config: &config,
                            registry: &registry,
                            metrics: &metrics,
                            cache: &cache,
                            live: &live,
                            batcher: &batcher,
                            running: &running,
                            snapshot: snapshot.as_ref(),
                            local_addr,
                        };
                        handle_connection(stream, &ctx);
                    }
                });
            }

            for stream in listener.incoming() {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Bound every blocking read so slow or silent peers can
                // neither pin a worker forever nor stall shutdown.
                let _ = stream.set_read_timeout(config.read_timeout);
                if let Err(rejected) = conns.push(stream) {
                    // Connection queue full: shed at the door.
                    metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
                    let mut w = io::BufWriter::new(rejected);
                    let _ = write_response(
                        &mut w,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", "1")],
                        "overloaded: connection queue full\n",
                        false,
                    );
                }
            }
            conns.close();
            batcher.close();
            stop.raise();
            // Final save: a graceful shutdown leaves the warmest possible
            // snapshot for the next start.
            if let Some(snap) = &snapshot {
                if let Err(e) = snap.save(&cache, &live, &metrics) {
                    eprintln!("snapshot: {e}");
                }
            }
        });
        Ok(())
    }
}

/// Shared references a connection handler needs.
struct HandlerCtx<'a> {
    config: &'a ServerConfig,
    registry: &'a ModelRegistry,
    metrics: &'a ServeMetrics,
    cache: &'a BasisCache,
    live: &'a LiveRegistry,
    batcher: &'a Batcher,
    running: &'a AtomicBool,
    snapshot: Option<&'a SnapshotCtx>,
    local_addr: SocketAddr,
}

/// Serves requests on one connection until close or parse failure.
fn handle_connection(stream: TcpStream, ctx: &HandlerCtx<'_>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader, ctx.config.max_body_bytes) {
            Ok(r) => r,
            Err(ParseError::TimedOut) => {
                // Idle keep-alive peer or a trickling sender: answer 408
                // best-effort and free the worker. Counted apart from
                // client errors — an expired keep-alive is routine.
                ctx.metrics.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut writer, 408, "Request Timeout", &[], "read timed out\n", false);
                return;
            }
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    ctx.metrics.requests_client_error.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(&mut writer, status, reason, &[], &format!("{err}\n"), false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let shutdown = request.method == "POST" && request.path == "/shutdown";
        if !respond(&request, ctx, &mut writer) {
            return;
        }
        if shutdown {
            initiate_shutdown(ctx);
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Routes one request. Returns `false` when the connection must close.
fn respond(req: &Request, ctx: &HandlerCtx<'_>, writer: &mut impl io::Write) -> bool {
    let keep = req.keep_alive;
    let m = ctx.metrics;
    let ok = |w: &mut dyn io::Write, body: &str, m: &ServeMetrics| {
        m.requests_ok.fetch_add(1, Ordering::Relaxed);
        write_response(w, 200, "OK", &[], body, keep).is_ok()
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ok(writer, "ok\n", m),
        ("GET", "/metrics") => {
            let body = m.render(&ctx.cache.stats(), &ctx.live.stats(), ctx.registry.version());
            ok(writer, &body, m)
        }
        ("POST", "/reload") => match ctx.registry.reload() {
            Ok(version) => {
                m.reloads_ok.fetch_add(1, Ordering::Relaxed);
                ok(writer, &format!("reloaded version {version}\n"), m)
            }
            Err(e) => {
                m.reloads_failed.fetch_add(1, Ordering::Relaxed);
                m.requests_client_error.fetch_add(1, Ordering::Relaxed);
                write_response(writer, 500, "Internal Server Error", &[], &format!("reload failed: {e}\n"), keep)
                    .is_ok()
            }
        },
        ("POST", "/snapshot") => match ctx.snapshot {
            None => {
                m.requests_client_error.fetch_add(1, Ordering::Relaxed);
                write_response(writer, 400, "Bad Request", &[], "snapshot persistence not configured (start with --snapshot PATH)\n", keep)
                    .is_ok()
            }
            Some(snap) => match snap.save(ctx.cache, ctx.live, m) {
                Ok(n) => ok(writer, &format!("snapshot saved: {n} entries\n"), m),
                Err(e) => {
                    write_response(writer, 500, "Internal Server Error", &[], &format!("{e}\n"), keep)
                        .is_ok()
                }
            },
        },
        ("POST", "/shutdown") => ok(writer, "shutting down\n", m),
        ("POST", "/predict") => respond_predict(req, ctx, writer),
        ("POST", "/predict_next") => respond_predict_next(req, ctx, writer),
        ("POST", "/observe") => respond_observe(req, ctx, writer),
        _ => {
            m.requests_client_error.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                404,
                "Not Found",
                &[],
                &format!("no route for {} {}\n", req.method, req.path),
                keep,
            )
            .is_ok()
        }
    }
}

/// `POST /predict`: parse → enqueue → wait for the batch → answer.
fn respond_predict(req: &Request, ctx: &HandlerCtx<'_>, writer: &mut impl io::Write) -> bool {
    let started = Instant::now();
    let keep = req.keep_alive;
    let m = ctx.metrics;
    let fail = |w: &mut dyn io::Write, body: String, m: &ServeMetrics| {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        write_response(w, 400, "Bad Request", &[], &body, keep).is_ok()
    };

    let window = match req.query_param("window") {
        None => ctx.config.default_window,
        Some(raw) => match raw.parse::<f64>() {
            Ok(w) if w.is_finite() && w > 0.0 => w,
            _ => return fail(writer, format!("invalid window `{raw}`\n"), m),
        },
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return fail(writer, "request body is not utf-8\n".into(), m);
    };
    let cascades = match parse_cascades(text, ctx.config.limits) {
        Ok(c) => c,
        Err(e) => return fail(writer, format!("invalid cascade payload: {e}\n"), m),
    };
    if cascades.is_empty() {
        m.requests_ok.fetch_add(1, Ordering::Relaxed);
        return write_response(writer, 200, "OK", &[], "", keep).is_ok();
    }

    let ids: Vec<u64> = cascades.iter().map(|c| c.id).collect();
    let slot = ResponseSlot::new();
    let job = PredictJob { cascades, window, kind: JobKind::SizeLog, slot: Arc::clone(&slot) };
    if let Err(e) = ctx.batcher.enqueue(job) {
        m.requests_shed.fetch_add(1, Ordering::Relaxed);
        let body = match e {
            EnqueueError::Overloaded { queued, limit } => {
                format!("overloaded: {queued} cascades queued (limit {limit})\n")
            }
            EnqueueError::Closed => "server shutting down\n".to_string(),
        };
        return write_response(writer, 503, "Service Unavailable", &[("Retry-After", "1")], &body, keep)
            .is_ok();
    }
    match slot.wait() {
        Ok(preds) => {
            let mut body = String::with_capacity(preds.len() * 32);
            for (id, out) in ids.iter().zip(&preds) {
                // `{:?}` prints the shortest decimal that round-trips to
                // the exact f32 — the parity contract with predict_log.
                if let PredictOutput::Log(p) = out {
                    body.push_str(&format!("prediction {id} {p:?}\n"));
                }
            }
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            m.predict_latency_us.record(us);
            write_response(writer, 200, "OK", &[], &body, keep).is_ok()
        }
        Err(reason) => {
            write_response(writer, 503, "Service Unavailable", &[], &format!("{reason}\n"), keep).is_ok()
        }
    }
}

/// `POST /predict_next`: like `/predict`, but ranks the top-`k` next
/// adopters per cascade through the same batcher and spectral cache.
/// Response: one `next <id> <user> <prob> [<user> <prob> …]` line per
/// cascade, probabilities formatted with `{:?}` so served output is
/// bit-identical to a direct `predict_next` call on the same checkpoint.
/// Requires a next-user checkpoint; on a size-regression model the route
/// answers `409 Conflict`.
fn respond_predict_next(req: &Request, ctx: &HandlerCtx<'_>, writer: &mut impl io::Write) -> bool {
    let started = Instant::now();
    let keep = req.keep_alive;
    let m = ctx.metrics;
    let fail = |w: &mut dyn io::Write, body: String, m: &ServeMetrics| {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        write_response(w, 400, "Bad Request", &[], &body, keep).is_ok()
    };

    if ctx.registry.config().task != cascn::TaskKind::NextUser {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        return write_response(
            writer,
            409,
            "Conflict",
            &[],
            "model serves size regression, not next-user (start with --task next-user)\n",
            keep,
        )
        .is_ok();
    }
    let window = match req.query_param("window") {
        None => ctx.config.default_window,
        Some(raw) => match raw.parse::<f64>() {
            Ok(w) if w.is_finite() && w > 0.0 => w,
            _ => return fail(writer, format!("invalid window `{raw}`\n"), m),
        },
    };
    let k = match req.query_param("k") {
        None => 10usize,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return fail(writer, format!("invalid k `{raw}`\n"), m),
        },
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return fail(writer, "request body is not utf-8\n".into(), m);
    };
    let cascades = match parse_cascades(text, ctx.config.limits) {
        Ok(c) => c,
        Err(e) => return fail(writer, format!("invalid cascade payload: {e}\n"), m),
    };
    if cascades.is_empty() {
        m.requests_ok.fetch_add(1, Ordering::Relaxed);
        return write_response(writer, 200, "OK", &[], "", keep).is_ok();
    }

    let ids: Vec<u64> = cascades.iter().map(|c| c.id).collect();
    let slot = ResponseSlot::new();
    let job = PredictJob { cascades, window, kind: JobKind::NextUser { k }, slot: Arc::clone(&slot) };
    if let Err(e) = ctx.batcher.enqueue(job) {
        m.requests_shed.fetch_add(1, Ordering::Relaxed);
        let body = match e {
            EnqueueError::Overloaded { queued, limit } => {
                format!("overloaded: {queued} cascades queued (limit {limit})\n")
            }
            EnqueueError::Closed => "server shutting down\n".to_string(),
        };
        return write_response(writer, 503, "Service Unavailable", &[("Retry-After", "1")], &body, keep)
            .is_ok();
    }
    match slot.wait() {
        Ok(outs) => {
            let mut body = String::with_capacity(outs.len() * 16 * k);
            for (id, out) in ids.iter().zip(&outs) {
                if let PredictOutput::TopK(ranked) = out {
                    body.push_str(&format!("next {id}"));
                    for (user, p) in ranked {
                        body.push_str(&format!(" {user} {p:?}"));
                    }
                    body.push('\n');
                }
            }
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            m.predict_next_latency_us.record(us);
            write_response(writer, 200, "OK", &[], &body, keep).is_ok()
        }
        Err(reason) => {
            write_response(writer, 503, "Service Unavailable", &[], &format!("{reason}\n"), keep).is_ok()
        }
    }
}

/// `POST /observe`: append adoption events to a server-resident cascade.
///
/// The body is a single-cascade suffix (see [`parse_observe_body`]); the
/// registry keeps its incremental spectral state warm, so the follow-up
/// `/predict` for the same content hits the basis cache instead of paying
/// a cold preprocessing pass.
fn respond_observe(req: &Request, ctx: &HandlerCtx<'_>, writer: &mut impl io::Write) -> bool {
    let started = Instant::now();
    let keep = req.keep_alive;
    let m = ctx.metrics;
    let fail = |w: &mut dyn io::Write, body: String, m: &ServeMetrics| {
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        write_response(w, 400, "Bad Request", &[], &body, keep).is_ok()
    };

    let window = match req.query_param("window") {
        None => ctx.config.default_window,
        Some(raw) => match raw.parse::<f64>() {
            Ok(w) if w.is_finite() && w > 0.0 => w,
            _ => return fail(writer, format!("invalid window `{raw}`\n"), m),
        },
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return fail(writer, "request body is not utf-8\n".into(), m);
    };
    let body = match parse_observe_body(text, ctx.config.limits) {
        Ok(b) => b,
        Err(e) => return fail(writer, format!("invalid observe payload: {e}\n"), m),
    };
    match ctx.live.observe(&body, window, ctx.registry.config()) {
        Ok(out) => {
            // Seed the basis cache so an immediate `/predict` carrying the
            // same full cascade content reuses the warm incremental basis.
            ctx.cache.put(&out.cascade, out.window, out.basis);
            m.observe_events.fetch_add(out.appended as u64, Ordering::Relaxed);
            if out.refreshed > 0 {
                m.observe_refreshes.fetch_add(out.refreshed as u64, Ordering::Relaxed);
            }
            m.requests_ok.fetch_add(1, Ordering::Relaxed);
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            m.observe_latency_us.record(us);
            let reply = format!(
                "observed {} size {} nodes {} appended {} refreshed {} created {}\n",
                body.id,
                out.cascade.final_size(),
                out.num_nodes,
                out.appended,
                out.refreshed,
                out.created,
            );
            write_response(writer, 200, "OK", &[], &reply, keep).is_ok()
        }
        Err(ObserveError::Disabled) => {
            // Shed like an overloaded `/predict`: streaming is off, the
            // client should fall back to one-shot prediction.
            m.requests_shed.fetch_add(1, Ordering::Relaxed);
            write_response(
                writer,
                503,
                "Service Unavailable",
                &[("Retry-After", "1")],
                "streaming ingestion disabled (start with --live-capacity N)\n",
                keep,
            )
            .is_ok()
        }
        Err(e) => fail(writer, format!("observe rejected: {e}\n"), m),
    }
}

/// Flips the run flag and pokes the accept loop awake.
fn initiate_shutdown(ctx: &HandlerCtx<'_>) {
    ctx.running.store(false, Ordering::SeqCst);
    // The accept loop is blocked in `accept()`; a throwaway loopback
    // connection gets it to re-check the flag. Errors are irrelevant —
    // if connect fails the listener is already gone.
    let _ = TcpStream::connect(ctx.local_addr);
}
