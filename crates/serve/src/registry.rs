//! The model registry: immutable, `Arc`-shared predictors with atomic
//! hot reload.
//!
//! A served model is loaded once from a [`TrainCheckpoint`] v2 file,
//! wrapped in an [`Arc`], and never mutated — every in-flight batch keeps
//! the `Arc` it grabbed, so a reload can swap the registry's pointer
//! without synchronizing with prediction work at all. Reload is
//! all-or-nothing: a corrupt or truncated checkpoint leaves the previous
//! model serving and surfaces the structured [`CascnError`] to the caller.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cascn::{CascnConfig, CascnError, CascnModel, TrainCheckpoint};

use crate::sync::{read_recover, write_recover};

/// One immutable loaded model plus its registry version.
pub struct LoadedModel {
    pub model: CascnModel,
    /// Monotonic version, bumped on every successful (re)load.
    pub version: u64,
}

/// Loads checkpoints from a fixed path and publishes them atomically.
pub struct ModelRegistry {
    path: PathBuf,
    cfg: CascnConfig,
    next_version: AtomicU64,
    current: RwLock<Arc<LoadedModel>>,
}

impl ModelRegistry {
    /// Loads the checkpoint at `path` under `cfg` (the architecture must
    /// match the checkpoint's parameter shapes) and opens the registry at
    /// version 1.
    pub fn open(path: impl AsRef<Path>, cfg: CascnConfig) -> Result<Self, CascnError> {
        let path = path.as_ref().to_path_buf();
        let model = Self::load_model(&path, cfg)?;
        Ok(Self {
            path,
            cfg,
            next_version: AtomicU64::new(2),
            current: RwLock::new(Arc::new(LoadedModel { model, version: 1 })),
        })
    }

    fn load_model(path: &Path, cfg: CascnConfig) -> Result<CascnModel, CascnError> {
        let ckpt = TrainCheckpoint::load(path)?;
        CascnModel::from_checkpoint(cfg, &ckpt)
    }

    /// The currently published model. Cheap: one read lock, one
    /// `Arc::clone`. Callers hold the `Arc` for the duration of a batch so
    /// a mid-batch reload never mixes parameters.
    pub fn current(&self) -> Arc<LoadedModel> {
        Arc::clone(&read_recover(&self.current))
    }

    /// The published version without taking the model.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Re-reads the checkpoint file and atomically publishes it under a
    /// bumped version. On any error — missing file, truncation, checksum
    /// mismatch, architecture drift — the previous model stays published.
    pub fn reload(&self) -> Result<u64, CascnError> {
        let model = Self::load_model(&self.path, self.cfg)?;
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let mut slot = write_recover(&self.current);
        *slot = Arc::new(LoadedModel { model, version });
        Ok(version)
    }

    /// The checkpoint path this registry watches.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The architecture config every load uses. Reloads swap parameters,
    /// never architecture, so this is fixed for the registry's lifetime —
    /// which is what makes the spectral cache (and its snapshots) safe to
    /// keep across reloads.
    pub fn config(&self) -> &CascnConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn::TrainOpts;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::{Dataset, Split};

    fn tiny_cfg() -> CascnConfig {
        CascnConfig {
            hidden: 4,
            mlp_hidden: 4,
            max_nodes: 10,
            max_steps: 4,
            threads: 1,
            ..CascnConfig::default()
        }
    }

    fn train_to(path: &Path, seed: u64) -> Dataset {
        let dataset = WeiboGenerator::new(WeiboConfig {
            num_cascades: 24,
            seed,
            max_size: 40,
        })
        .generate();
        let mut model = CascnModel::new(tiny_cfg());
        let opts = TrainOpts { epochs: 1, ..TrainOpts::default() };
        let ckpt_policy = cascn::CheckpointPolicy { path: path.to_path_buf(), every: 1 };
        model
            .fit_resumable(
                dataset.split(Split::Train),
                dataset.split(Split::Validation),
                25.0,
                &opts,
                None,
                Some(&ckpt_policy),
            )
            .expect("tiny training run succeeds");
        dataset
    }

    #[test]
    fn open_serves_and_reload_bumps_the_version() {
        let dir = std::env::temp_dir().join("cascn_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("open_reload.ckpt");
        let dataset = train_to(&path, 3);

        let reg = ModelRegistry::open(&path, tiny_cfg()).expect("checkpoint loads");
        assert_eq!(reg.version(), 1);
        let before = reg.current();
        let pred = before.model.predict_log(&dataset.cascades[0], 25.0);
        assert!(pred.is_finite());

        let v = reg.reload().expect("same file reloads");
        assert_eq!(v, 2);
        let after = reg.current();
        assert_eq!(after.version, 2);
        // Same checkpoint → bit-identical predictions across versions.
        assert_eq!(
            pred.to_bits(),
            after.model.predict_log(&dataset.cascades[0], 25.0).to_bits()
        );
        // The old Arc is still usable by an in-flight batch.
        assert_eq!(before.version, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_reload_keeps_the_previous_model() {
        let dir = std::env::temp_dir().join("cascn_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt_reload.ckpt");
        train_to(&path, 4);

        let reg = ModelRegistry::open(&path, tiny_cfg()).unwrap();
        let good = reg.current();

        // Truncate the file mid-section.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = reg.reload().expect_err("truncated checkpoint must fail");
        assert!(
            matches!(err, CascnError::CheckpointTruncated { .. } | CascnError::Checkpoint(_)),
            "{err}"
        );
        // Still serving version 1, same Arc.
        assert_eq!(reg.version(), 1);
        assert!(Arc::ptr_eq(&good, &reg.current()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage_gracefully() {
        let dir = std::env::temp_dir().join("cascn_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = match ModelRegistry::open(&path, tiny_cfg()) {
            Err(e) => e,
            Ok(_) => panic!("garbage must not load"),
        };
        let msg = err.to_string();
        assert!(!msg.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
