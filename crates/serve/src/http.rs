//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! The serving layer speaks just enough HTTP for `curl`, the `loadgen`
//! bench client, and the protocol tests: request line + headers + an
//! optional `Content-Length` body. Everything is bounded — header bytes,
//! body bytes — and every malformed input maps to a specific 4xx status
//! instead of a panic or an unbounded read.

use std::io::{self, BufRead, Write};

/// Hard cap on the request line plus all header lines, in bytes. Requests
/// whose head section exceeds this are rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request: method, path (query string split off), and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Path with any `?query` suffix removed.
    pub path: String,
    /// Raw query string (without the `?`), empty if absent.
    pub query: String,
    pub body: Vec<u8>,
    /// True when the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// Looks up a `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed, each mapping to one response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    /// Not an error worth answering — the handler just drops the socket.
    ConnectionClosed,
    /// Malformed request line or header (400).
    Malformed(String),
    /// Head section exceeded [`MAX_HEAD_BYTES`] (431).
    HeadTooLarge,
    /// Declared `Content-Length` exceeds the configured cap (413).
    BodyTooLarge { declared: usize, limit: usize },
    /// The socket's read timeout elapsed before a full request arrived —
    /// an idle keep-alive peer or a trickling (slowloris) sender. The
    /// connection handler answers `408` and closes; `status()` is `None`
    /// because the handler needs to count this separately from client
    /// errors.
    TimedOut,
    /// Socket-level failure mid-request.
    Io(String),
}

impl ParseError {
    /// The status line this error should be answered with, if any.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ParseError::ConnectionClosed => None,
            ParseError::Malformed(_) => Some((400, "Bad Request")),
            ParseError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            ParseError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            ParseError::TimedOut => None,
            ParseError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed before request"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ParseError::TimedOut => write!(f, "read timed out"),
            ParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

/// Maps a socket error to its parse outcome: a read-timeout expiry
/// (`WouldBlock` on Unix `SO_RCVTIMEO`, `TimedOut` on Windows) becomes
/// [`ParseError::TimedOut`]; everything else is an opaque I/O failure.
fn io_error(e: io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::TimedOut,
        _ => ParseError::Io(e.to_string()),
    }
}

/// Reads one CRLF- (or LF-) terminated line incrementally via
/// `fill_buf`/`consume`, charging bytes against `budget` chunk by chunk.
/// A peer streaming an endless line costs at most `budget + 1` buffered
/// bytes before the parse fails with [`ParseError::HeadTooLarge`] — it
/// can never make the server allocate past the head cap. Returns
/// `Ok(None)` on clean EOF before any byte.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        };
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ParseError::Malformed("eof inside request head".into()))
            };
        }
        // One byte past the budget is enough to prove the head is
        // oversized — never inspect or buffer more than that.
        let take = chunk.len().min(*budget + 1);
        let newline = chunk[..take].iter().position(|&b| b == b'\n');
        let consumed = newline.map_or(take, |nl| nl + 1);
        line.extend_from_slice(&chunk[..newline.unwrap_or(take)]);
        reader.consume(consumed);
        *budget = budget.checked_sub(consumed).ok_or(ParseError::HeadTooLarge)?;
        if newline.is_some() {
            while line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(ParseError::Malformed("request head is not valid utf-8".into())),
            };
        }
    }
}

/// Parses one request from `reader`, enforcing `max_body_bytes` on the
/// declared `Content-Length` *before* reading the body.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(ParseError::ConnectionClosed),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("unsupported version `{version}`")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed(format!("bad request target `{target}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: usize = 0;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let header = match read_line(reader, &mut budget)? {
            None => return Err(ParseError::Malformed("eof inside headers".into())),
            Some(l) => l,
        };
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header `{header}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ParseError::Malformed(format!("bad content-length `{value}`")))?;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body).map_err(io_error)?;

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
        keep_alive,
    })
}

/// Writes a complete response; `extra_headers` are `name: value` pairs.
pub fn write_response(
    writer: &mut (impl Write + ?Sized),
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = "POST /predict?window=25 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw, 64).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query_param("window"), Some("25"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse(raw, 0).unwrap().keep_alive);
        let raw10 = "GET /metrics HTTP/1.0\r\n\r\n";
        assert!(!parse(raw10, 0).unwrap().keep_alive);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/1.1 EXTRA\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw, 64).unwrap_err();
            assert_eq!(err.status(), Some((400, "Bad Request")), "{raw:?} -> {err}");
        }
    }

    #[test]
    fn oversized_declared_body_is_413_before_reading_it() {
        // Body bytes are not even present — the declared length is enough.
        let raw = "POST /predict HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        let err = parse(raw, 64).unwrap_err();
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..600 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(20)));
        }
        raw.push_str("\r\n");
        let err = parse(&raw, 64).unwrap_err();
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn eof_before_request_is_connection_closed() {
        assert_eq!(parse("", 64).unwrap_err(), ParseError::ConnectionClosed);
        assert!(ParseError::ConnectionClosed.status().is_none());
    }

    /// A reader that yields `a` bytes forever — a request line with no
    /// newline, as a memory-exhaustion attacker would send it.
    struct EndlessLine;

    impl io::Read for EndlessLine {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            buf.fill(b'a');
            Ok(buf.len())
        }
    }

    #[test]
    fn endless_request_line_fails_431_within_the_head_budget() {
        // Terminates (rather than allocating without bound) because the
        // budget is charged before bytes are buffered.
        let err = read_request(&mut BufReader::new(EndlessLine), 64).unwrap_err();
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn read_line_never_buffers_past_the_budget() {
        let mut budget = 100;
        let err = read_line(&mut BufReader::new(EndlessLine), &mut budget).unwrap_err();
        assert_eq!(err, ParseError::HeadTooLarge);
        assert_eq!(budget, 100, "budget is only spent on consumed-and-kept bytes");
    }

    /// A reader whose every read reports a socket timeout.
    struct AlwaysTimesOut;

    impl io::Read for AlwaysTimesOut {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::from(io::ErrorKind::WouldBlock))
        }
    }

    #[test]
    fn socket_timeouts_map_to_timed_out_with_no_auto_status() {
        let err = read_request(&mut BufReader::new(AlwaysTimesOut), 64).unwrap_err();
        assert_eq!(err, ParseError::TimedOut);
        assert!(err.status().is_none(), "the handler answers 408 itself");
    }

    #[test]
    fn response_writer_emits_content_length_and_extras() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "Service Unavailable", &[("Retry-After", "1")], "shed\n", false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Content-Length: 5\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nshed\n"), "{text}");
    }
}
