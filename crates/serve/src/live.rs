//! Server-resident growing cascades — the state behind `POST /observe`.
//!
//! A live cascade is one still unfolding at request time: clients stream
//! adoption events as they happen and ask for predictions between appends.
//! Rebuilding the spectral pipeline from scratch on every append wastes the
//! structure of the update (one node, one edge), so each registered cascade
//! holds a [`WindowedPreprocessor`] whose directed operator advances
//! incrementally and whose window crossings are push-style refreshes.
//!
//! The registry is bounded like the spectral cache: at capacity the
//! least-recently-observed cascade is evicted (its next append must restart
//! from the root), and a zero capacity disables streaming entirely.
//! Appends are atomic per request — every event in an `/observe` body is
//! validated against the resident prefix *before* any of them is applied,
//! so a rejected payload leaves the cascade exactly as it was.
//!
//! Entries live behind one `Mutex`: appends mutate spectral state, so they
//! serialize with each other (but never with `/predict`, which runs off the
//! immutable `SpectralBasis` snapshots this registry publishes).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cascn::{CascnConfig, WindowedPreprocessor};
use cascn_cascades::{Cascade, CascadeFault, ObserveBody};
use cascn_graph::SpectralBasis;

use crate::sync::lock_recover;

/// Identity of a live cascade: its id plus exact start-time bits. Two
/// streams with the same id but different start times are different
/// cascades, never silently merged.
type Key = (u64, u64);

struct LiveEntry {
    key: Key,
    state: WindowedPreprocessor,
    last_used: u64,
}

/// Why an `/observe` was refused. Every variant is a client-visible 4xx —
/// none of them disturbs resident state.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserveError {
    /// The registry was built with zero capacity (`--live-capacity 0`).
    Disabled,
    /// The key is not resident and the payload does not begin at the root,
    /// so there is no prefix to append to. (First contact must carry the
    /// full observed prefix from the root; after an eviction the client
    /// re-syncs the same way.)
    UnknownCascade { id: u64 },
    /// The key is resident under a different start time.
    StartTimeMismatch { id: u64, held: f64, got: f64 },
    /// An event failed the cascade invariants against the resident prefix.
    /// `index` is its position within the request body (0-based).
    Append { index: usize, fault: CascadeFault },
}

impl fmt::Display for ObserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserveError::Disabled => write!(f, "live ingestion disabled (live capacity is 0)"),
            ObserveError::UnknownCascade { id } => write!(
                f,
                "unknown live cascade {id}: first observe must start at the root event"
            ),
            ObserveError::StartTimeMismatch { id, held, got } => write!(
                f,
                "live cascade {id} is registered with start time {held:?}, request says {got:?}"
            ),
            ObserveError::Append { index, fault } => {
                write!(f, "event {index} rejected: {fault}")
            }
        }
    }
}

/// What one accepted `/observe` did.
#[derive(Debug)]
pub struct ObserveOutcome {
    /// The cascade as resident after the append (input prefix + label-side
    /// events) — the exact content a follow-up `/predict` body carries.
    pub cascade: Cascade,
    /// The spectral handle after the append, ready to seed the shared
    /// basis cache.
    pub basis: SpectralBasis,
    /// Observation window the state is maintained at.
    pub window: f64,
    /// Events appended by this request.
    pub appended: usize,
    /// How many of them landed inside the window and advanced the
    /// incremental operator (the rest only grew the label side).
    pub refreshed: usize,
    /// Observed-and-truncated node count after the append.
    pub num_nodes: usize,
    /// True when this request registered the cascade (first contact or
    /// post-eviction re-sync).
    pub created: bool,
}

/// Point-in-time registry counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Cascades currently resident.
    pub entries: usize,
    /// Cascades evicted to make room since startup.
    pub evictions: u64,
    /// Total adoption events held across resident cascades.
    pub events: usize,
    /// Cold restarts taken by warm φ iterations across resident cascades.
    pub warm_fallbacks: u64,
    /// Approximate resident bytes (operators + adjacency + events).
    pub approx_bytes: usize,
}

/// A bounded, deterministic LRU of live cascades keyed by
/// `(id, start-time bits)`.
pub struct LiveRegistry {
    capacity: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
    entries: Mutex<Vec<LiveEntry>>,
}

impl LiveRegistry {
    /// A registry holding at most `capacity` live cascades. Zero disables
    /// streaming: every `/observe` answers [`ObserveError::Disabled`].
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Applies one parsed `/observe` body at observation window `window`.
    ///
    /// Resident key: the window is advanced (push-style) if it moved, then
    /// every event is pre-validated against the resident prefix and — only
    /// if all pass — appended, advancing the incremental operator for
    /// in-window events. Unknown key: a payload that starts at the root
    /// registers the cascade (evicting the least-recently-observed entry
    /// at capacity); a suffix payload is refused with
    /// [`ObserveError::UnknownCascade`].
    pub fn observe(
        &self,
        body: &ObserveBody,
        window: f64,
        cfg: &CascnConfig,
    ) -> Result<ObserveOutcome, ObserveError> {
        if self.capacity == 0 {
            return Err(ObserveError::Disabled);
        }
        let key: Key = (body.id, body.start_time.to_bits());
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = lock_recover(&self.entries);

        match entries.binary_search_by_key(&key, |e| e.key) {
            Ok(idx) => {
                let entry = &mut entries[idx];
                entry.last_used = now;
                // lint: allow(float-eq) — identical windows share state as-is; any
                // other value is a crossing handled by advance_window
                let refreshed_by_window = if window == entry.state.window() {
                    0
                } else {
                    entry.state.advance_window(window)
                };
                // Pre-validate the whole body against the resident prefix so
                // a mid-body rejection cannot leave a half-applied append.
                let mut probe = entry.state.cascade().clone();
                for (i, e) in body.events.iter().enumerate() {
                    probe
                        .try_append(e.clone())
                        .map_err(|fault| ObserveError::Append { index: i, fault })?;
                }
                let mut refreshed = refreshed_by_window;
                for e in &body.events {
                    // Validation above makes this infallible; the flag says
                    // whether the event landed inside the window.
                    if entry.state.observe_event(e.clone()).unwrap_or(false) {
                        refreshed += 1;
                    }
                }
                Ok(ObserveOutcome {
                    cascade: entry.state.cascade().clone(),
                    basis: entry.state.basis(),
                    window,
                    appended: body.events.len(),
                    refreshed,
                    num_nodes: entry.state.num_nodes(),
                    created: false,
                })
            }
            Err(at) => {
                let starts_at_root = body.events.first().is_some_and(|e| e.parent.is_none());
                if !starts_at_root {
                    return Err(ObserveError::UnknownCascade { id: body.id });
                }
                if let Some(other) = entries
                    .iter()
                    .find(|e| e.key.0 == body.id && e.key.1 != key.1)
                {
                    return Err(ObserveError::StartTimeMismatch {
                        id: body.id,
                        held: f64::from_bits(other.key.1),
                        got: body.start_time,
                    });
                }
                let cascade = Cascade::try_new(body.id, body.start_time, body.events.clone())
                    .map_err(|fault| ObserveError::Append { index: 0, fault })?;
                let state = WindowedPreprocessor::new(cascade, window, cfg);
                let mut at = at;
                if entries.len() >= self.capacity {
                    // Evict the least-recently-observed cascade; ties break
                    // toward the smallest key so eviction is deterministic.
                    if let Some(victim) = (0..entries.len())
                        .min_by_key(|&i| (entries[i].last_used, entries[i].key))
                    {
                        entries.remove(victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        if victim < at {
                            at -= 1;
                        }
                    }
                }
                let outcome = ObserveOutcome {
                    cascade: state.cascade().clone(),
                    basis: state.basis(),
                    window,
                    appended: body.events.len(),
                    refreshed: state.num_nodes(),
                    num_nodes: state.num_nodes(),
                    created: true,
                };
                entries.insert(at, LiveEntry { key, state, last_used: now });
                Ok(outcome)
            }
        }
    }

    /// Current counters for the metrics endpoint.
    pub fn stats(&self) -> LiveStats {
        let entries = lock_recover(&self.entries);
        LiveStats {
            entries: entries.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            events: entries.iter().map(|e| e.state.cascade().final_size()).sum(),
            warm_fallbacks: entries.iter().map(|e| e.state.warm_fallbacks()).sum(),
            approx_bytes: entries.iter().map(|e| e.state.approx_bytes()).sum(),
        }
    }

    /// Every resident cascade with its window, least-recently-observed
    /// first — the live section of a snapshot. Restoring through
    /// [`seed`](Self::seed) in the same order reproduces eviction priority.
    pub fn export(&self) -> Vec<(Cascade, f64)> {
        let entries = lock_recover(&self.entries);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (entries[i].last_used, entries[i].key));
        order
            .into_iter()
            .map(|i| (entries[i].state.cascade().clone(), entries[i].state.window()))
            .collect()
    }

    /// Re-registers snapshot-restored live cascades, oldest first, paying
    /// one cold preprocessing pass each (the incremental operator state is
    /// derived, not persisted). Intended for startup; entries beyond
    /// capacity and duplicate keys are dropped. Returns how many were
    /// installed.
    pub fn seed(&self, restored: Vec<(Cascade, f64)>, cfg: &CascnConfig) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut entries = lock_recover(&self.entries);
        let mut installed = 0usize;
        for (cascade, window) in restored {
            if entries.len() >= self.capacity {
                break;
            }
            let key: Key = (cascade.id, cascade.start_time.to_bits());
            let Err(at) = entries.binary_search_by_key(&key, |e| e.key) else {
                continue;
            };
            let state = WindowedPreprocessor::new(cascade, window, cfg);
            let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            entries.insert(at, LiveEntry { key, state, last_used });
            installed += 1;
        }
        installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::Event;

    fn cfg() -> CascnConfig {
        CascnConfig { max_nodes: 16, max_steps: 8, ..CascnConfig::default() }
    }

    fn root_body(id: u64) -> ObserveBody {
        ObserveBody {
            id,
            start_time: 0.0,
            events: vec![Event { user: id, parent: None, time: 0.0 }],
        }
    }

    fn suffix(id: u64, events: Vec<Event>) -> ObserveBody {
        ObserveBody { id, start_time: 0.0, events }
    }

    #[test]
    fn register_then_append_matches_one_shot_preprocessing() {
        let reg = LiveRegistry::new(4);
        let window = 100.0;
        let first = reg.observe(&root_body(7), window, &cfg()).expect("registers");
        assert!(first.created);
        assert_eq!((first.appended, first.num_nodes), (1, 1));

        let out = reg
            .observe(
                &suffix(7, vec![
                    Event { user: 8, parent: Some(0), time: 5.0 },
                    Event { user: 9, parent: Some(0), time: 150.0 },
                ]),
                window,
                &cfg(),
            )
            .expect("appends");
        assert!(!out.created);
        assert_eq!(out.appended, 2);
        assert_eq!(out.refreshed, 1, "only the in-window event refreshes");
        assert_eq!(out.num_nodes, 2);
        assert_eq!(out.cascade.final_size(), 3);

        // The published basis matches one-shot preprocessing of the same
        // content within the streaming tolerance.
        let cold = cascn::spectral_basis(&out.cascade, window, &cfg());
        let (a, b) = (out.basis.scaled_dense(), cold.scaled_dense());
        let gap = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(gap < 5e-4, "incremental basis drifted {gap}");
    }

    #[test]
    fn appends_are_atomic_per_request() {
        let reg = LiveRegistry::new(4);
        reg.observe(&root_body(1), 50.0, &cfg()).unwrap();
        // Second event is invalid (forward parent): nothing may apply.
        let err = reg
            .observe(
                &suffix(1, vec![
                    Event { user: 2, parent: Some(0), time: 1.0 },
                    Event { user: 3, parent: Some(9), time: 2.0 },
                ]),
                50.0,
                &cfg(),
            )
            .unwrap_err();
        assert!(matches!(err, ObserveError::Append { index: 1, .. }), "{err}");
        let out = reg
            .observe(&suffix(1, vec![Event { user: 2, parent: Some(0), time: 1.0 }]), 50.0, &cfg())
            .expect("the cascade is untouched by the rejected body");
        assert_eq!(out.cascade.final_size(), 2, "rejected events were never applied");
    }

    #[test]
    fn unknown_suffix_and_start_mismatch_are_refused() {
        let reg = LiveRegistry::new(4);
        let err = reg
            .observe(&suffix(5, vec![Event { user: 1, parent: Some(0), time: 1.0 }]), 50.0, &cfg())
            .unwrap_err();
        assert!(matches!(err, ObserveError::UnknownCascade { id: 5 }), "{err}");

        reg.observe(&root_body(5), 50.0, &cfg()).unwrap();
        let err = reg
            .observe(
                &ObserveBody {
                    id: 5,
                    start_time: 3.0,
                    events: vec![Event { user: 5, parent: None, time: 0.0 }],
                },
                50.0,
                &cfg(),
            )
            .unwrap_err();
        assert!(matches!(err, ObserveError::StartTimeMismatch { id: 5, .. }), "{err}");
    }

    #[test]
    fn capacity_bounds_the_registry_with_lru_eviction() {
        let reg = LiveRegistry::new(2);
        reg.observe(&root_body(1), 50.0, &cfg()).unwrap();
        reg.observe(&root_body(2), 50.0, &cfg()).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        reg.observe(&suffix(1, vec![Event { user: 9, parent: Some(0), time: 1.0 }]), 50.0, &cfg())
            .unwrap();
        reg.observe(&root_body(3), 50.0, &cfg()).unwrap();
        let s = reg.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // 2 was evicted: a suffix append must now demand a root re-sync.
        let err = reg
            .observe(&suffix(2, vec![Event { user: 9, parent: Some(0), time: 1.0 }]), 50.0, &cfg())
            .unwrap_err();
        assert!(matches!(err, ObserveError::UnknownCascade { id: 2 }), "{err}");
        // 1 survived.
        let out = reg
            .observe(&suffix(1, vec![Event { user: 10, parent: Some(0), time: 2.0 }]), 50.0, &cfg())
            .unwrap();
        assert!(!out.created);
    }

    #[test]
    fn zero_capacity_disables_streaming() {
        let reg = LiveRegistry::new(0);
        let err = reg.observe(&root_body(1), 50.0, &cfg()).unwrap_err();
        assert_eq!(err, ObserveError::Disabled);
        assert_eq!(reg.stats(), LiveStats::default());
    }

    #[test]
    fn window_crossing_is_handled_on_observe() {
        let reg = LiveRegistry::new(4);
        reg.observe(
            &ObserveBody {
                id: 4,
                start_time: 0.0,
                events: vec![
                    Event { user: 1, parent: None, time: 0.0 },
                    Event { user: 2, parent: Some(0), time: 10.0 },
                    Event { user: 3, parent: Some(1), time: 30.0 },
                ],
            },
            20.0,
            &cfg(),
        )
        .unwrap();
        // Same cascade, wider window: the t=30 event crosses in.
        let out = reg
            .observe(
                &suffix(4, vec![Event { user: 5, parent: Some(2), time: 40.0 }]),
                45.0,
                &cfg(),
            )
            .unwrap();
        assert_eq!(out.num_nodes, 4);
        assert_eq!(out.refreshed, 2, "one window crossing + one in-window append");
        let cold = cascn::spectral_basis(&out.cascade, 45.0, &cfg());
        assert_eq!(cold.num_nodes(), out.basis.num_nodes());
    }

    #[test]
    fn export_seed_round_trip_restores_live_state() {
        let reg = LiveRegistry::new(4);
        reg.observe(&root_body(1), 50.0, &cfg()).unwrap();
        reg.observe(&root_body(2), 60.0, &cfg()).unwrap();
        reg.observe(&suffix(1, vec![Event { user: 9, parent: Some(0), time: 3.0 }]), 50.0, &cfg())
            .unwrap();
        let exported = reg.export();
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].0.id, 2, "LRU order, oldest first");

        let restored = LiveRegistry::new(4);
        assert_eq!(restored.seed(exported, &cfg()), 2);
        // A suffix append on the restored registry works without a re-sync.
        let out = restored
            .observe(&suffix(1, vec![Event { user: 10, parent: Some(0), time: 4.0 }]), 50.0, &cfg())
            .expect("restored cascade accepts appends");
        assert!(!out.created);
        assert_eq!(out.cascade.final_size(), 3);
    }
}
