//! Replica process supervision: spawn, watch, restart.
//!
//! The supervisor owns the replica *processes* the way the router owns
//! their *health*: it spawns each `cascn-serve` child, learns the
//! ephemeral port from the child's `listening on ADDR` stdout line,
//! publishes the address into the shared [`ReplicaSet`], and then watches
//! the process. When a replica dies — crash, OOM kill, `kill -9` from a
//! chaos test — the supervisor marks it down immediately (so the router
//! stops sending traffic before a single connect can fail against the
//! dead port), waits out a capped exponential restart backoff, and
//! respawns it. A replica that stays up long enough earns its backoff
//! back; one that crash-loops is throttled at the cap rather than
//! fork-bombing the host.
//!
//! Announce lines (machine-parseable, one per event, on the supervisor's
//! own stdout):
//!
//! ```text
//! replica 0 pid 12345
//! replica 0 listening on 127.0.0.1:40001
//! replica 0 exited: signal: 9 (SIGKILL)
//! ```
//!
//! `scripts/fleet_smoke.sh` greps these to find victims for its kill
//! phase, and tests use [`Supervisor::kill_replica`] directly as the
//! deterministic chaos hook.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::RouterMetrics;
use crate::router::{ReplicaSet, ShutdownSignal};
use crate::sync::lock_recover;

/// How to launch one replica. Each replica gets its own command so
/// per-replica state (snapshot paths, seeds) can differ.
#[derive(Debug, Clone)]
pub struct ReplicaCommand {
    /// Path to the `cascn-serve` binary (or anything speaking its
    /// stdout contract).
    pub program: String,
    /// Full argument list. Must bind an ephemeral port (`--addr
    /// 127.0.0.1:0`) unless every replica has a distinct fixed port.
    pub args: Vec<String>,
}

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// First restart delay after a crash.
    pub backoff_base: Duration,
    /// Ceiling for the restart delay of a crash-looping replica.
    pub backoff_cap: Duration,
    /// A replica alive at least this long resets its backoff to base.
    pub stable_after: Duration,
    /// Print `replica i ...` announce lines to stdout.
    pub announce: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            stable_after: Duration::from_secs(5),
            announce: true,
        }
    }
}

struct SupervisorInner {
    commands: Vec<ReplicaCommand>,
    config: SupervisorConfig,
    replicas: Arc<ReplicaSet>,
    metrics: Arc<RouterMetrics>,
    /// Live child handles, one slot per replica, so `kill_replica` and
    /// `stop` can signal processes the monitor threads own.
    children: Vec<Mutex<Option<Child>>>,
    stopping: AtomicBool,
    stop_signal: ShutdownSignal,
}

/// Handle to a running supervision tier. Dropping it does *not* stop the
/// replicas — call [`Supervisor::stop`].
pub struct Supervisor {
    inner: Arc<SupervisorInner>,
    monitors: Vec<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns every replica and one monitor thread per replica.
    ///
    /// `replicas` must have exactly `commands.len()` slots; addresses are
    /// published into it as children report their ports.
    pub fn start(
        commands: Vec<ReplicaCommand>,
        config: SupervisorConfig,
        replicas: Arc<ReplicaSet>,
        metrics: Arc<RouterMetrics>,
    ) -> Self {
        let n = commands.len();
        let inner = Arc::new(SupervisorInner {
            commands,
            config,
            replicas,
            metrics,
            children: (0..n).map(|_| Mutex::new(None)).collect(),
            stopping: AtomicBool::new(false),
            stop_signal: ShutdownSignal::new(),
        });
        let monitors = (0..n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || monitor_replica(&inner, i))
            })
            .collect();
        Self { inner, monitors }
    }

    /// SIGKILLs replica `i`'s current process, if it has one. The monitor
    /// thread observes the death and restarts it through the normal
    /// backoff path — this is exactly what a chaos test needs: a real
    /// process death with real recovery, on demand.
    pub fn kill_replica(&self, i: usize) -> bool {
        let Some(slot) = self.inner.children.get(i) else {
            return false;
        };
        let mut child = lock_recover(slot);
        match child.as_mut() {
            Some(c) => c.kill().is_ok(),
            None => false,
        }
    }

    /// Current pid of replica `i`, if running.
    pub fn pid(&self, i: usize) -> Option<u32> {
        let slot = self.inner.children.get(i)?;
        let child = lock_recover(slot);
        child.as_ref().map(Child::id)
    }

    /// Stops supervision: no more restarts, kills every live replica,
    /// joins the monitor threads.
    pub fn stop(self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        self.inner.stop_signal.raise();
        for slot in &self.inner.children {
            let mut child = lock_recover(slot);
            if let Some(c) = child.as_mut() {
                let _ = c.kill();
            }
        }
        for handle in self.monitors {
            let _ = handle.join();
        }
        // Reap anything the monitors left behind (e.g. killed during a
        // backoff sleep, after the monitor re-checked `stopping`). Take
        // the child out of the slot before reaping: `Child::wait` can
        // block arbitrarily long, and a monitor or chaos hook polling the
        // same slot must never queue behind that wait.
        for slot in &self.inner.children {
            let orphan = lock_recover(slot).take();
            if let Some(mut c) = orphan {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

fn announce(inner: &SupervisorInner, line: &str) {
    if inner.config.announce {
        println!("{line}");
    }
}

/// The life of one replica slot: spawn → publish address → watch →
/// mark down → back off → respawn, until the supervisor stops.
fn monitor_replica(inner: &SupervisorInner, i: usize) {
    let mut backoff = inner.config.backoff_base;
    let mut spawned_before = false;
    while !inner.stopping.load(Ordering::SeqCst) {
        if spawned_before {
            inner.replicas.bump_restarts(i);
            inner.metrics.restarts.fetch_add(1, Ordering::Relaxed);
        }
        let started = Instant::now();
        match spawn_replica(inner, i) {
            Ok(()) => {
                // Returned means the child exited (or spawn-side i/o
                // died); a long stable run resets the crash-loop budget.
                if started.elapsed() >= inner.config.stable_after {
                    backoff = inner.config.backoff_base;
                } else {
                    backoff = (backoff * 2).min(inner.config.backoff_cap);
                }
            }
            Err(e) => {
                eprintln!("replica {i}: spawn failed: {e}");
                backoff = (backoff * 2).min(inner.config.backoff_cap);
            }
        }
        inner.replicas.mark_down(i);
        spawned_before = true;
        if inner.stopping.load(Ordering::SeqCst) || inner.stop_signal.wait(backoff) {
            return;
        }
    }
}

/// Spawns one replica process and blocks until it exits. Publishes the
/// address the moment the child prints its `listening on` line.
fn spawn_replica(inner: &SupervisorInner, i: usize) -> std::io::Result<()> {
    let cmd = &inner.commands[i];
    let mut child = Command::new(&cmd.program)
        .args(&cmd.args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    announce(inner, &format!("replica {i} pid {}", child.id()));
    let stdout = child.stdout.take();
    {
        let mut slot = lock_recover(&inner.children[i]);
        *slot = Some(child);
    }

    // Drain the child's stdout on this thread; EOF doubles as the death
    // notification, so no extra waiter thread is needed.
    if let Some(out) = stdout {
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        let mut published = false;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let trimmed = line.trim();
                    if !published {
                        if let Some(addr) = trimmed.strip_prefix("listening on ") {
                            inner.replicas.set_addr(i, addr.trim().to_string());
                            announce(inner, &format!("replica {i} listening on {}", addr.trim()));
                            published = true;
                        }
                    }
                }
                Err(_) => break,
            }
        }
    }

    // The pipe is closed: drop traffic before reaping, so the router
    // never races a connect against the dead port.
    inner.replicas.mark_down(i);
    let status = {
        let mut slot = lock_recover(&inner.children[i]);
        slot.take()
    };
    if let Some(mut c) = status {
        match c.wait() {
            Ok(st) => announce(inner, &format!("replica {i} exited: {st}")),
            Err(e) => announce(inner, &format!("replica {i} exited: wait failed: {e}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> ReplicaCommand {
        ReplicaCommand {
            program: "/bin/sh".into(),
            args: vec!["-c".into(), script.into()],
        }
    }

    fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        pred()
    }

    #[test]
    fn supervisor_publishes_addr_restarts_after_kill_and_stops_cleanly() {
        let replicas = Arc::new(ReplicaSet::new(1, 3));
        let metrics = Arc::new(RouterMetrics::new());
        let config = SupervisorConfig {
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(100),
            stable_after: Duration::from_secs(60),
            announce: false,
        };
        // A stand-in replica that speaks the stdout contract and then
        // sleeps until killed. `exec` matters: the shell must *become*
        // the sleep, so killing the child pid closes the stdout pipe.
        let sup = Supervisor::start(
            vec![sh("echo 'listening on 127.0.0.1:65000'; exec sleep 30")],
            config,
            Arc::clone(&replicas),
            Arc::clone(&metrics),
        );

        assert!(
            wait_until(Duration::from_secs(5), || replicas.addr(0).is_some()),
            "address should be published from the child's stdout"
        );
        assert_eq!(replicas.addr(0).as_deref(), Some("127.0.0.1:65000"));
        let first_pid = sup.pid(0);
        assert!(first_pid.is_some());

        assert!(sup.kill_replica(0), "kill needs a live child");
        assert!(
            wait_until(Duration::from_secs(5), || {
                metrics.restarts.load(Ordering::Relaxed) >= 1 && sup.pid(0) != first_pid && sup.pid(0).is_some()
            }),
            "a killed replica should be respawned with a new pid"
        );
        assert!(
            wait_until(Duration::from_secs(5), || replicas.views()[0].restarts >= 1),
            "the replica set should record the restart"
        );

        sup.stop();
        assert_eq!(replicas.addr(0), None, "stop marks replicas down");
    }
}
