//! Seeded chaos tests for the self-healing serving tier: real replica
//! processes, a real router, deterministic fault injection.
//!
//! The invariants every scenario holds to:
//!
//! 1. **Zero wrong answers.** Any `200` that comes back through the
//!    router is bit-identical to direct `CascnModel::predict_log` on the
//!    same checkpoint — kills, failovers, and warm starts may cost
//!    latency or a bounded number of `503`s, never correctness.
//! 2. **Bounded degradation.** During a failover window the only
//!    non-`200` the router may emit is `503` (with `Retry-After`); once
//!    the supervisor has restarted the victim, requests succeed again.
//! 3. **Warm recovery.** A replica restarted after `kill -9` reloads its
//!    persisted spectral cache and serves warm hits, and a *corrupted*
//!    snapshot cold-starts cleanly instead of poisoning answers.
//!
//! Chaos choices (victim replica, corruption offsets) come from the
//! seeded `cascn::FaultInjector`, so a failure reproduces bit-for-bit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cascn::{CascnConfig, CascnModel, CheckpointPolicy, FaultInjector, TrainCheckpoint, TrainOpts};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Dataset, Split};
use cascn_serve::cache::cascade_key;
use cascn_serve::router::{payload_fingerprint, route_order, ReplicaSet, Router, RouterConfig};
use cascn_serve::supervisor::{ReplicaCommand, Supervisor, SupervisorConfig};
use cascn_serve::{ModelRegistry, Server, ServerConfig};

const WINDOW: f64 = 25.0;

fn tiny_cfg() -> CascnConfig {
    CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 10,
        max_steps: 4,
        threads: 1,
        ..CascnConfig::default()
    }
}

struct TestEnv {
    dir: PathBuf,
    ckpt_path: PathBuf,
    dataset: Dataset,
}

/// Trains one tiny checkpoint shared by every test in this binary.
fn env() -> &'static TestEnv {
    static ENV: OnceLock<TestEnv> = OnceLock::new();
    ENV.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cascn_chaos_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_path = dir.join("chaos.ckpt");
        let dataset = WeiboGenerator::new(WeiboConfig {
            num_cascades: 24,
            seed: 11,
            max_size: 40,
        })
        .generate();
        let mut model = CascnModel::new(tiny_cfg());
        let opts = TrainOpts { epochs: 1, ..TrainOpts::default() };
        let policy = CheckpointPolicy { path: ckpt_path.clone(), every: 1 };
        model
            .fit_resumable(
                dataset.split(Split::Train),
                dataset.split(Split::Validation),
                WINDOW,
                &opts,
                None,
                Some(&policy),
            )
            .expect("tiny training run succeeds");
        TestEnv { dir, ckpt_path, dataset }
    })
}

/// The replica command line: the real `cascn-serve` binary with the
/// shared checkpoint, the tiny architecture, and its own snapshot file.
fn replica_command(tag: &str, i: usize) -> ReplicaCommand {
    let e = env();
    let snap = e.dir.join(format!("{tag}-replica-{i}.snap"));
    ReplicaCommand {
        program: env!("CARGO_BIN_EXE_cascn-serve").to_string(),
        args: [
            "--model",
            &e.ckpt_path.display().to_string(),
            "--addr",
            "127.0.0.1:0",
            "--hidden",
            "4",
            "--max-nodes",
            "10",
            "--max-steps",
            "4",
            "--threads",
            "1",
            "--workers",
            "2",
            "--window",
            "25",
            "--snapshot",
            &snap.display().to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    }
}

fn fast_supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(400),
        stable_after: Duration::from_secs(30),
        announce: false,
    }
}

fn fast_router_config() -> RouterConfig {
    RouterConfig {
        deadline: Duration::from_secs(3),
        max_attempts: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(300),
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(400),
        failure_threshold: 2,
        seed: 1234,
        ..RouterConfig::default()
    }
}

/// A whole running tier: supervisor + replicas + router.
struct Tier {
    addr: std::net::SocketAddr,
    replicas: Arc<ReplicaSet>,
    metrics: Arc<cascn_serve::RouterMetrics>,
    supervisor: Option<Supervisor>,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start_tier(tag: &str, n: usize) -> Tier {
    let replicas = Arc::new(ReplicaSet::new(n, fast_router_config().failure_threshold));
    let router = Router::bind(fast_router_config(), Arc::clone(&replicas)).expect("bind router");
    let metrics = Arc::clone(&router.metrics);
    let addr = router.local_addr();
    let supervisor = Supervisor::start(
        (0..n).map(|i| replica_command(tag, i)).collect(),
        fast_supervisor_config(),
        Arc::clone(&replicas),
        Arc::clone(&metrics),
    );
    let join = std::thread::spawn(move || router.run());
    Tier { addr, replicas, metrics, supervisor: Some(supervisor), join: Some(join) }
}

impl Drop for Tier {
    fn drop(&mut self) {
        let _ = raw_request(
            self.addr,
            "POST /shutdown HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        );
        if let Some(join) = self.join.take() {
            join.join().expect("router thread must not panic").expect("clean exit");
        }
        if let Some(sup) = self.supervisor.take() {
            sup.stop();
        }
    }
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    pred()
}

fn raw_request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    read_response(&mut BufReader::new(stream))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn predict(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    let raw = format!(
        "POST /predict?window={WINDOW} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, &raw)
}

fn body_for(cascades: &[Cascade]) -> String {
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("cascade {} {}\n", c.id, c.start_time));
        for e in &c.events {
            let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            s.push_str(&format!("event {} {parent} {}\n", e.user, e.time));
        }
    }
    s
}

/// The exact answer the tier must produce — computed against the
/// checkpoint directly, bypassing every serving layer.
fn expected_lines(cascades: &[Cascade]) -> String {
    let e = env();
    let ckpt = TrainCheckpoint::load(&e.ckpt_path).expect("checkpoint loads");
    let model = CascnModel::from_checkpoint(tiny_cfg(), &ckpt).expect("params fit");
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("prediction {} {:?}\n", c.id, model.predict_log(c, WINDOW)));
    }
    s
}

fn scrape_metric(addr_text: &str, name: &str) -> u64 {
    let stream = TcpStream::connect(addr_text).expect("connect replica");
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")
        .expect("send");
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read");
    text.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing metric {name} in:\n{text}"))
}

#[test]
fn kill_dash_nine_under_load_costs_at_most_bounded_503s_never_a_wrong_bit() {
    let e = env();
    let tier = start_tier("kill", 3);
    assert!(
        wait_until(Duration::from_secs(30), || tier.replicas.live_count() == 3),
        "all replicas must come up"
    );

    // Distinct payloads so routing spreads across replicas.
    let payloads: Vec<(String, String)> = (0..6)
        .map(|i| {
            let slice = &e.dataset.cascades[i..i + 2];
            (body_for(slice), expected_lines(slice))
        })
        .collect();

    // Baseline: through-the-router answers are bit-identical.
    for (body, want) in &payloads {
        let (status, got) = predict(tier.addr, body);
        assert_eq!(status, 200, "{got}");
        assert_eq!(&got, want, "router relays must not rewrite predictions");
    }

    // Chaos: SIGKILL a seeded victim mid-load, keep requesting throughout
    // the failover window, and tally outcomes.
    let victim = FaultInjector::new(99).pick_index(3);
    let sup = tier.supervisor.as_ref().expect("supervisor");
    assert!(sup.kill_replica(victim), "victim must be running");

    let mut ok = 0usize;
    let mut shed = 0usize;
    for round in 0..40 {
        let (body, want) = &payloads[round % payloads.len()];
        let (status, got) = predict(tier.addr, body);
        match status {
            200 => {
                ok += 1;
                assert_eq!(&got, want, "a 200 during failover must still be exact");
            }
            503 => shed += 1,
            other => panic!("round {round}: only 200/503 are acceptable, got {other}: {got}"),
        }
    }
    assert!(ok >= 30, "failover must not eat the request stream: {ok} ok, {shed} shed");

    // The supervisor restarts the victim; the tier heals to full strength.
    assert!(
        wait_until(Duration::from_secs(30), || tier.replicas.live_count() == 3),
        "killed replica must be restarted"
    );
    assert!(tier.metrics.restarts.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    let (status, got) = predict(tier.addr, &payloads[0].0);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, payloads[0].1);
}

#[test]
fn killed_replica_warm_starts_from_its_persisted_spectral_cache() {
    let e = env();
    let tier = start_tier("warm", 1);
    assert!(
        wait_until(Duration::from_secs(30), || tier.replicas.live_count() == 1),
        "replica must come up"
    );

    let slice = &e.dataset.cascades[..3];
    let (body, want) = (body_for(slice), expected_lines(slice));
    let (status, got) = predict(tier.addr, &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want);

    // Persist the now-warm cache, then SIGKILL the replica.
    let (status, snap_body) = raw_request(
        tier.addr,
        "POST /snapshot HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200, "snapshot fan-out must succeed: {snap_body}");
    let first_addr = tier.replicas.addr(0).expect("addr");
    let sup = tier.supervisor.as_ref().expect("supervisor");
    assert!(sup.kill_replica(0));

    // The supervisor brings it back; the restarted process must have
    // loaded the snapshot (warm load counted, warm entries installed).
    assert!(
        wait_until(Duration::from_secs(30), || {
            tier.replicas.addr(0).is_some_and(|a| a != first_addr)
                || (tier.replicas.views()[0].restarts >= 1 && tier.replicas.addr(0).is_some())
        }),
        "replica must restart"
    );
    assert!(
        wait_until(Duration::from_secs(30), || tier.replicas.live_count() == 1),
        "restarted replica must go healthy"
    );
    let new_addr = tier.replicas.addr(0).expect("addr after restart");
    assert_eq!(scrape_metric(&new_addr, "cascn_snapshot_load{result=\"warm\"}"), 1);
    assert!(scrape_metric(&new_addr, "cascn_spectral_cache_warm_entries") >= 3);

    // Same payload again: exact bits, and served from the restored cache.
    let (status, got) = predict(tier.addr, &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want, "a warm-started replica must serve identical bits");
    assert!(
        scrape_metric(&new_addr, "cascn_spectral_cache_warm_hits_total") >= 3,
        "the restored entries must actually serve the hits"
    );
}

#[test]
fn corrupted_snapshot_is_a_clean_cold_start_never_garbage() {
    let e = env();
    let snap_path = e.dir.join("corrupt.snap");
    let slice = &e.dataset.cascades[..3];
    let (body, want) = (body_for(slice), expected_lines(slice));

    let config = ServerConfig {
        default_window: WINDOW,
        snapshot_path: Some(snap_path.clone()),
        ..ServerConfig::default()
    };
    // First life: warm the cache and persist it on shutdown.
    {
        let registry = ModelRegistry::open(&e.ckpt_path, tiny_cfg()).expect("checkpoint loads");
        let server = Server::bind(config.clone(), registry).expect("bind");
        let addr = server.local_addr();
        let join = std::thread::spawn(move || server.run());
        let (status, got) = predict(addr, &body);
        assert_eq!(status, 200, "{got}");
        assert_eq!(got, want);
        let _ = raw_request(addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
        join.join().expect("no panic").expect("clean exit");
    }
    assert!(snap_path.exists(), "shutdown must leave a snapshot behind");

    // Seeded bit rot on the snapshot file.
    let offsets = FaultInjector::new(7).flip_bytes(&snap_path, 4).expect("corrupt file");
    assert!(!offsets.is_empty());

    // Second life: the corrupt snapshot is rejected — cold start, correct
    // answers, and the rejection is visible on /metrics.
    let registry = ModelRegistry::open(&e.ckpt_path, tiny_cfg()).expect("checkpoint loads");
    let server = Server::bind(config, registry).expect("bind survives corrupt snapshot");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run());
    let (status, got) = predict(addr, &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want, "a cold start must recompute, never serve poisoned bases");
    let (_, metrics_text) = raw_request(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(
        metrics_text.contains("cascn_snapshot_load{result=\"cold_rejected\"} 1"),
        "rejection must be counted:\n{metrics_text}"
    );
    assert!(
        metrics_text.contains("cascn_spectral_cache_warm_entries 0"),
        "nothing from the corrupt file may be installed:\n{metrics_text}"
    );
    let _ = raw_request(addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
    join.join().expect("no panic").expect("clean exit");
}

#[test]
fn stalled_backend_is_deadlined_failed_over_and_ejected() {
    let e = env();

    // A backend that accepts connections and then never says a word —
    // the worst kind of failure, because only deadlines catch it.
    let stall_listener = TcpListener::bind("127.0.0.1:0").expect("bind stall");
    let stall_addr = stall_listener.local_addr().expect("addr").to_string();
    let stall_thread = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold sockets open until the listener is dropped (test end).
        while let Ok((sock, _)) = stall_listener.accept() {
            held.push(sock);
            if held.len() > 256 {
                return;
            }
        }
    });

    // One real replica, spawned directly (no supervisor — this scenario
    // is about the router's deadline, not restarts).
    let real = replica_command("stall", 0);
    let mut child = std::process::Command::new(&real.program)
        .args(&real.args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn replica");
    let real_addr = {
        let out = child.stdout.take().expect("stdout");
        let mut reader = BufReader::new(out);
        let mut line = String::new();
        loop {
            line.clear();
            assert!(reader.read_line(&mut line).expect("read") > 0, "replica died before binding");
            if let Some(addr) = line.trim().strip_prefix("listening on ") {
                break addr.to_string();
            }
        }
    };

    // Router with a tight deadline over [stalled, real].
    let config = RouterConfig {
        deadline: Duration::from_millis(600),
        ..fast_router_config()
    };
    let replicas = Arc::new(ReplicaSet::with_backends(
        &[stall_addr.clone(), real_addr.clone()],
        config.failure_threshold,
    ));
    let router = Router::bind(config, Arc::clone(&replicas)).expect("bind router");
    let metrics = Arc::clone(&router.metrics);
    let addr = router.local_addr();
    let join = std::thread::spawn(move || router.run());

    // Pick a payload that rendezvous-routes to the stalled backend first,
    // so the request *must* burn its deadline there and fail over.
    let payload = (0..12)
        .map(|i| &e.dataset.cascades[i..i + 2])
        .find(|slice| {
            let cascades: Vec<Cascade> = slice.to_vec();
            let fp = payload_fingerprint(cascades.iter().map(cascade_key));
            route_order(fp, 2)[0] == 0
        })
        .expect("some payload routes to the stalled backend first");
    let (body, want) = (body_for(payload), expected_lines(payload));

    let (status, got) = predict(addr, &body);
    assert_eq!(status, 200, "failover must rescue the request: {got}");
    assert_eq!(got, want, "the rescued answer must be exact");
    assert!(
        metrics.failovers.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "the request must have failed over from the stalled backend"
    );

    // The prober's timeouts eject the stalled backend; after that,
    // requests stop paying the stall tax entirely.
    assert!(
        wait_until(Duration::from_secs(20), || {
            replicas.views()[0].state == cascn_serve::ReplicaState::Ejected
        }),
        "a backend that never answers probes must be ejected"
    );
    let t0 = Instant::now();
    let (status, got) = predict(addr, &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want);
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "an ejected backend must cost zero deadline: {:?}",
        t0.elapsed()
    );

    let _ = raw_request(addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
    join.join().expect("no panic").expect("clean exit");
    let _ = child.kill();
    let _ = child.wait();
    drop(stall_thread);
}
