//! End-to-end protocol tests: a real server on an ephemeral port, real
//! sockets, and the parity contract — served predictions are byte-identical
//! to direct `CascnModel::predict_log` on the same checkpoint.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;

use cascn::{CascnConfig, CascnModel, CheckpointPolicy, TrainCheckpoint, TrainOpts};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Dataset, Split};
use cascn_serve::{ModelRegistry, Server, ServerConfig};

const WINDOW: f64 = 25.0;

fn tiny_cfg() -> CascnConfig {
    CascnConfig {
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 10,
        max_steps: 4,
        threads: 1,
        ..CascnConfig::default()
    }
}

struct TestEnv {
    ckpt_path: PathBuf,
    dataset: Dataset,
}

/// Trains one tiny checkpoint shared by every test in this binary.
fn env() -> &'static TestEnv {
    static ENV: OnceLock<TestEnv> = OnceLock::new();
    ENV.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cascn_protocol_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_path = dir.join("protocol.ckpt");
        let dataset = WeiboGenerator::new(WeiboConfig {
            num_cascades: 24,
            seed: 11,
            max_size: 40,
        })
        .generate();
        let mut model = CascnModel::new(tiny_cfg());
        let opts = TrainOpts { epochs: 1, ..TrainOpts::default() };
        let policy = CheckpointPolicy { path: ckpt_path.clone(), every: 1 };
        model
            .fit_resumable(
                dataset.split(Split::Train),
                dataset.split(Split::Validation),
                WINDOW,
                &opts,
                None,
                Some(&policy),
            )
            .expect("tiny training run succeeds");
        TestEnv { ckpt_path, dataset }
    })
}

/// A running server plus the thread driving it. Shut down via the route.
struct ServerHandle {
    addr: std::net::SocketAddr,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start_server(mut config: ServerConfig) -> ServerHandle {
    let e = env();
    config.addr = "127.0.0.1:0".into();
    config.default_window = WINDOW;
    let registry = ModelRegistry::open(&e.ckpt_path, tiny_cfg()).expect("checkpoint loads");
    let server = Server::bind(config, registry).expect("bind ephemeral port");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run());
    ServerHandle { addr, join: Some(join) }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = raw_request(self.addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
        if let Some(join) = self.join.take() {
            join.join().expect("server thread must not panic").expect("clean exit");
        }
    }
}

/// Sends raw bytes, returns (status code, body).
fn raw_request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    read_response(&mut BufReader::new(stream))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One `POST /predict` over its own connection.
fn predict(addr: std::net::SocketAddr, body: &str, window: f64) -> (u16, String) {
    let raw = format!(
        "POST /predict?window={window} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, &raw)
}

/// Serializes cascades in the request text format.
fn body_for(cascades: &[Cascade]) -> String {
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("cascade {} {}\n", c.id, c.start_time));
        for e in &c.events {
            let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            s.push_str(&format!("event {} {parent} {}\n", e.user, e.time));
        }
    }
    s
}

/// The exact lines the server must produce for `cascades`.
fn expected_lines(cascades: &[Cascade]) -> String {
    let e = env();
    let ckpt = TrainCheckpoint::load(&e.ckpt_path).expect("checkpoint loads");
    let model = CascnModel::from_checkpoint(tiny_cfg(), &ckpt).expect("params fit");
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("prediction {} {:?}\n", c.id, model.predict_log(c, WINDOW)));
    }
    s
}

#[test]
fn malformed_request_lines_get_400_not_a_hang() {
    let h = start_server(ServerConfig::default());
    for raw in [
        "GARBAGE\r\n\r\n",
        "GET /predict HTTP/1.1 TRAILING\r\n\r\n",
        "POST nopath HTTP/1.1\r\n\r\n",
        "POST /predict HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
    ] {
        let (status, body) = raw_request(h.addr, raw);
        assert_eq!(status, 400, "{raw:?} -> {body}");
    }
}

#[test]
fn oversized_bodies_get_413() {
    let h = start_server(ServerConfig { max_body_bytes: 64, ..ServerConfig::default() });
    let raw = "POST /predict HTTP/1.1\r\nConnection: close\r\nContent-Length: 100000\r\n\r\n";
    let (status, body) = raw_request(h.addr, raw);
    assert_eq!(status, 413, "{body}");
}

#[test]
fn invalid_cascade_payloads_get_400_with_line_numbers() {
    let h = start_server(ServerConfig::default());
    for (payload, needle) in [
        ("event 1 - 0.0\n", "before any cascade header"),
        ("cascade 1 0.0\nevent 5 - 3.0\n", "root must be at t=0"),
        ("cascade 1 0.0\nnonsense\n", "unknown record type"),
        ("not utf8 comes below", "unknown record type"),
    ] {
        let (status, body) = predict(h.addr, payload, WINDOW);
        assert_eq!(status, 400, "{payload:?} -> {body}");
        assert!(body.contains(needle), "{payload:?} -> {body}");
    }
    // Invalid window is also a 400.
    let (status, body) = predict(h.addr, "cascade 1 0.0\nevent 5 - 0.0\n", -3.0);
    assert_eq!(status, 400, "{body}");
    // Non-utf8 body.
    let raw_bytes: &[u8] = b"POST /predict HTTP/1.1\r\nConnection: close\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc";
    let mut stream = TcpStream::connect(h.addr).unwrap();
    stream.write_all(raw_bytes).unwrap();
    let (status, body) = read_response(&mut BufReader::new(stream));
    assert_eq!(status, 400);
    assert!(body.contains("utf-8"), "{body}");
}

#[test]
fn empty_payload_is_an_empty_200() {
    let h = start_server(ServerConfig::default());
    let (status, body) = predict(h.addr, "# nothing here\n", WINDOW);
    assert_eq!(status, 200);
    assert!(body.is_empty(), "{body}");
}

#[test]
fn served_predictions_match_direct_predict_bit_for_bit() {
    let e = env();
    let h = start_server(ServerConfig::default());
    let cascades = &e.dataset.cascades[..6];
    let (status, body) = predict(h.addr, &body_for(cascades), WINDOW);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected_lines(cascades));
}

#[test]
fn concurrent_clients_all_get_bit_identical_results() {
    let e = env();
    let h = start_server(ServerConfig {
        // Enough workers for every client, but a tiny batch bound: force
        // coalescing and queue pressure while every answer stays exact.
        workers: 8,
        max_batch: 4,
        ..ServerConfig::default()
    });
    let addr = h.addr;
    let slices: Vec<&[Cascade]> = (0..8)
        .map(|i| &e.dataset.cascades[i..i + 3])
        .collect();
    let expected: Vec<String> = slices.iter().map(|s| expected_lines(s)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .map(|s| {
                let body = body_for(s);
                scope.spawn(move || predict(addr, &body, WINDOW))
            })
            .collect();
        for (handle, want) in handles.into_iter().zip(&expected) {
            let (status, got) = handle.join().expect("client thread");
            assert_eq!(status, 200, "{got}");
            assert_eq!(&got, want, "served response diverged from direct predict");
        }
    });
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let e = env();
    let h = start_server(ServerConfig::default());
    let cascades = &e.dataset.cascades[..2];
    let body = body_for(cascades);
    let mut stream = TcpStream::connect(h.addr).expect("connect");
    for _ in 0..2 {
        let raw = format!(
            "POST /predict?window={WINDOW} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let (status, got) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(got, expected_lines(cascades));
    }
}

#[test]
fn metrics_report_cache_hits_and_latency_quantiles() {
    let e = env();
    let h = start_server(ServerConfig::default());
    let cascades = &e.dataset.cascades[..3];
    let body = body_for(cascades);
    // Same payload twice: the second pass must hit the spectral cache.
    for _ in 0..2 {
        let (status, _) = predict(h.addr, &body, WINDOW);
        assert_eq!(status, 200);
    }
    let (status, text) =
        raw_request(h.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name} in:\n{text}"))
    };
    assert_eq!(metric("cascn_spectral_cache_hits_total"), 3);
    assert_eq!(metric("cascn_spectral_cache_misses_total"), 3);
    assert_eq!(metric("cascn_predictions_total"), 6);
    assert_eq!(metric("cascn_predict_latency_us_count"), 2);
    assert!(metric("cascn_predict_latency_us{quantile=\"0.5\"}") > 0);
    assert!(metric("cascn_predict_latency_us{quantile=\"0.99\"}") > 0);
    assert_eq!(metric("cascn_requests_total{class=\"ok\"}"), 2);
}

#[test]
fn reload_bumps_the_version_and_keeps_parity() {
    let e = env();
    let h = start_server(ServerConfig::default());
    let cascades = &e.dataset.cascades[..2];
    let before = predict(h.addr, &body_for(cascades), WINDOW);
    let (status, body) =
        raw_request(h.addr, "POST /reload HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("reloaded version 2"), "{body}");
    let after = predict(h.addr, &body_for(cascades), WINDOW);
    assert_eq!(before, after, "same checkpoint must serve identical bits after reload");
}

#[test]
fn slow_and_idle_clients_time_out_and_never_block_shutdown() {
    let h = start_server(ServerConfig {
        read_timeout: Some(std::time::Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    // A trickling (slowloris-style) sender: partial request line, then
    // silence. It must be answered 408 and disconnected, not hold a
    // worker forever.
    let mut slow = TcpStream::connect(h.addr).expect("connect");
    slow.write_all(b"GET /heal").expect("partial send");
    let (status, body) = read_response(&mut BufReader::new(slow));
    assert_eq!(status, 408, "{body}");
    // An idle keep-alive client that stays connected and sends nothing.
    let idle = TcpStream::connect(h.addr).expect("connect");
    // Other clients are still served while it idles...
    let (status, body) = raw_request(h.addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    // ...and shutdown completes while it is still connected: Drop sends
    // POST /shutdown and joins the server thread, which would hang here
    // (until the harness timeout) if idle reads were unbounded.
    drop(h);
    drop(idle);
}

/// One `POST /observe` over its own connection.
fn observe(addr: std::net::SocketAddr, body: &str, window: f64) -> (u16, String) {
    let raw = format!(
        "POST /observe?window={window} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, &raw)
}

#[test]
fn observe_stream_then_predict_matches_one_shot() {
    let e = env();
    let h = start_server(ServerConfig::default());
    let c = e
        .dataset
        .cascades
        .iter()
        .find(|c| c.events.len() >= 5)
        .expect("dataset has a cascade with at least 5 events");

    // Register with the first two events, then stream the rest one at a time.
    let serialize = |events: &[cascn_cascades::Event]| {
        let mut s = format!("cascade {} {}\n", c.id, c.start_time);
        for ev in events {
            let parent = ev.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            s.push_str(&format!("event {} {parent} {}\n", ev.user, ev.time));
        }
        s
    };
    let (status, body) = observe(h.addr, &serialize(&c.events[..2]), WINDOW);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("created true"), "{body}");
    for ev in &c.events[2..] {
        let (status, body) = observe(h.addr, &serialize(std::slice::from_ref(ev)), WINDOW);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("created false"), "{body}");
    }

    // The incrementally maintained cascade must now serve the same bits as
    // a one-shot prediction over the full payload.
    let (status, served) = predict(h.addr, &body_for(std::slice::from_ref(c)), WINDOW);
    assert_eq!(status, 200, "{served}");
    assert_eq!(served, expected_lines(std::slice::from_ref(c)));

    // The predict above must have hit the observe-seeded basis cache, and
    // the observe counters must be live on the scrape.
    let (status, text) = raw_request(h.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(text.contains("cascn_spectral_cache_hits_total 1"), "{text}");
    assert!(text.contains("cascn_live_cascades 1"), "{text}");
    assert!(text.contains("cascn_observe_latency_us_count"), "{text}");
}

#[test]
fn observe_rejects_bad_payloads_and_disabled_streaming() {
    let h = start_server(ServerConfig::default());
    // Suffix for a cascade the server has never seen.
    let (status, body) = observe(h.addr, "cascade 999 0\nevent 5 0 1.0\n", WINDOW);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown live cascade"), "{body}");
    // Malformed grammar: two cascade headers in one observe body.
    let (status, body) =
        observe(h.addr, "cascade 1 0\nevent 0 - 0\ncascade 2 0\nevent 0 - 0\n", WINDOW);
    assert_eq!(status, 400, "{body}");
    drop(h);

    // With live capacity 0 the route sheds instead of failing requests.
    let h = start_server(ServerConfig { live_capacity: 0, ..ServerConfig::default() });
    let (status, body) = observe(h.addr, "cascade 1 0\nevent 0 - 0\n", WINDOW);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("disabled"), "{body}");
}

#[test]
fn unknown_routes_get_404() {
    let h = start_server(ServerConfig::default());
    let (status, _) = raw_request(h.addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 404);
    let (status, body) = raw_request(h.addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
}

// ---- microscopic next-user serving -------------------------------------

fn next_cfg() -> CascnConfig {
    CascnConfig {
        task: cascn::TaskKind::NextUser,
        vocab_users: 5000,
        ..tiny_cfg()
    }
}

/// One next-user checkpoint (exported v2 format) shared by the tests below.
fn next_ckpt_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cascn_protocol_next_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.ckpt");
        let model = CascnModel::new(next_cfg());
        model.export_checkpoint().save(&path).expect("next checkpoint saves");
        path
    })
}

fn start_next_server(mut config: ServerConfig) -> ServerHandle {
    config.addr = "127.0.0.1:0".into();
    config.default_window = WINDOW;
    let registry = ModelRegistry::open(next_ckpt_path(), next_cfg()).expect("checkpoint loads");
    let server = Server::bind(config, registry).expect("bind ephemeral port");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run());
    ServerHandle { addr, join: Some(join) }
}

/// One `POST /predict_next` over its own connection.
fn predict_next(addr: std::net::SocketAddr, body: &str, window: f64, k: usize) -> (u16, String) {
    let raw = format!(
        "POST /predict_next?window={window}&k={k} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, &raw)
}

/// The exact `next …` lines the server must produce for `cascades`.
fn expected_next_lines(cascades: &[Cascade], k: usize) -> String {
    let ckpt = TrainCheckpoint::load(next_ckpt_path()).expect("checkpoint loads");
    let model = CascnModel::from_checkpoint(next_cfg(), &ckpt).expect("params fit");
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("next {}", c.id));
        for (user, p) in model.predict_next(c, WINDOW, k) {
            s.push_str(&format!(" {user} {p:?}"));
        }
        s.push('\n');
    }
    s
}

#[test]
fn predict_next_on_a_size_model_is_409() {
    let h = start_server(ServerConfig::default());
    let e = env();
    let (status, body) = predict_next(h.addr, &body_for(&e.dataset.cascades[..1]), WINDOW, 5);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("next-user"), "{body}");
}

#[test]
fn served_predict_next_is_bit_identical_and_masks_infected_users() {
    let e = env();
    let h = start_next_server(ServerConfig::default());
    let cascades = &e.dataset.cascades[..4];
    let (status, body) = predict_next(h.addr, &body_for(cascades), WINDOW, 7);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected_next_lines(cascades, 7));
    // End-to-end mask contract: no served user may already be infected.
    for (line, c) in body.lines().zip(cascades) {
        let infected: Vec<u64> = c
            .events
            .iter()
            .filter(|ev| ev.time <= WINDOW)
            .map(|ev| ev.user)
            .collect();
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields[0], "next");
        assert_eq!(fields[1], c.id.to_string());
        for pair in fields[2..].chunks(2) {
            let user: u64 = pair[0].parse().expect("user id");
            assert!(
                !infected.contains(&user),
                "infected user {user} served in {line:?}"
            );
        }
    }
}

#[test]
fn concurrent_predict_next_clients_all_get_bit_identical_results() {
    let e = env();
    let h = start_next_server(ServerConfig {
        workers: 8,
        max_batch: 4,
        ..ServerConfig::default()
    });
    let addr = h.addr;
    let slices: Vec<&[Cascade]> = (0..8).map(|i| &e.dataset.cascades[i..i + 3]).collect();
    let expected: Vec<String> = slices.iter().map(|s| expected_next_lines(s, 5)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .map(|s| {
                let body = body_for(s);
                scope.spawn(move || predict_next(addr, &body, WINDOW, 5))
            })
            .collect();
        for (handle, want) in handles.into_iter().zip(&expected) {
            let (status, got) = handle.join().expect("client thread");
            assert_eq!(status, 200, "{got}");
            assert_eq!(&got, want, "served /predict_next diverged from direct predict_next");
        }
    });
}

#[test]
fn observe_stream_then_predict_next_matches_one_shot() {
    let e = env();
    let h = start_next_server(ServerConfig::default());
    let c = e
        .dataset
        .cascades
        .iter()
        .find(|c| c.events.len() >= 5)
        .expect("dataset has a cascade with at least 5 events");
    let serialize = |events: &[cascn_cascades::Event]| {
        let mut s = format!("cascade {} {}\n", c.id, c.start_time);
        for ev in events {
            let parent = ev.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            s.push_str(&format!("event {} {parent} {}\n", ev.user, ev.time));
        }
        s
    };
    let (status, body) = observe(h.addr, &serialize(&c.events[..2]), WINDOW);
    assert_eq!(status, 200, "{body}");
    for ev in &c.events[2..] {
        let (status, body) = observe(h.addr, &serialize(std::slice::from_ref(ev)), WINDOW);
        assert_eq!(status, 200, "{body}");
    }
    // The ranking must ride the incrementally updated spectral basis and
    // still serve the same bits as a cold one-shot call.
    let (status, served) = predict_next(h.addr, &body_for(std::slice::from_ref(c)), WINDOW, 10);
    assert_eq!(status, 200, "{served}");
    assert_eq!(served, expected_next_lines(std::slice::from_ref(c), 10));
    let (status, text) = raw_request(h.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(text.contains("cascn_spectral_cache_hits_total 1"), "{text}");
    assert!(text.contains("cascn_predict_next_latency_us_count 1"), "{text}");
}
