//! Micro-benchmarks of the spectral machinery: CasLaplacian construction,
//! exact λ_max vs. the ≈2 shortcut (the Table V cost trade-off), and
//! Chebyshev basis expansion as K grows (the Table V "bigger K costs more"
//! claim).

use cascn_graph::{laplacian, DiGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random cascade tree with `n` nodes.
fn random_cascade(n: usize, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for child in 1..n {
        let parent = rng.random_range(0..child);
        g.add_edge(parent, child, 1.0);
    }
    g
}

fn bench_cas_laplacian(c: &mut Criterion) {
    let mut group = c.benchmark_group("cas_laplacian");
    for &n in &[10usize, 30, 100] {
        let g = random_cascade(n, 7);
        group.bench_with_input(BenchmarkId::new("directed", n), &g, |b, g| {
            b.iter(|| laplacian::cas_laplacian(std::hint::black_box(g), 0.85))
        });
        group.bench_with_input(BenchmarkId::new("undirected", n), &g, |b, g| {
            b.iter(|| laplacian::undirected_normalized_laplacian(std::hint::black_box(g)))
        });
    }
    group.finish();
}

fn bench_lambda_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda_max");
    for &n in &[10usize, 30, 100] {
        let g = random_cascade(n, 11);
        let lap = laplacian::cas_laplacian(&g, 0.85);
        group.bench_with_input(BenchmarkId::new("exact_power_iteration", n), &lap, |b, lap| {
            b.iter(|| laplacian::largest_eigenvalue(std::hint::black_box(lap)))
        });
    }
    group.finish();
}

fn bench_chebyshev(c: &mut Criterion) {
    let mut group = c.benchmark_group("chebyshev_bases");
    let g = random_cascade(30, 13);
    let lap = laplacian::cas_laplacian(&g, 0.85);
    let scaled = laplacian::scale_laplacian(&lap, laplacian::largest_eigenvalue(&lap));
    for k in [1usize, 2, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| laplacian::chebyshev_bases(std::hint::black_box(&scaled), k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cas_laplacian, bench_lambda_max, bench_chebyshev);
criterion_main!(benches);
