//! Benchmarks the paper's computational-cost claim (§I, §V): representing a
//! cascade as a sub-cascade snapshot sequence is cheaper than random-walk
//! sampling (DeepCas-style), especially as cascades grow.

use cascn::{preprocess, CascnConfig};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Cascade;
use cascn_graph::walks::{sample_walks, WalkConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pick_cascade(min_size: usize) -> Cascade {
    let d = WeiboGenerator::new(WeiboConfig {
        num_cascades: 600,
        seed: 99,
        max_size: 1000,
    })
    .generate();
    d.cascades
        .iter()
        .find(|c| c.final_size() >= min_size)
        .expect("generator produces large cascades")
        .clone()
}

fn bench_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade_representation");
    for &size in &[10usize, 50, 100] {
        let cascade = pick_cascade(size);
        let window = f64::MAX;
        let cfg = CascnConfig {
            max_nodes: size,
            max_steps: size,
            ..CascnConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("snapshots+laplacian (CasCN)", size),
            &cascade,
            |b, cascade| b.iter(|| preprocess(std::hint::black_box(cascade), window, &cfg)),
        );
        // DeepCas samples many walks per cascade (the paper's K=200 walks of
        // length 10); this is the sampling cost CasCN avoids.
        let walk_cfg = WalkConfig {
            num_walks: 200,
            walk_length: 10,
        };
        group.bench_with_input(
            BenchmarkId::new("random_walks (DeepCas)", size),
            &cascade,
            |b, cascade| {
                b.iter(|| {
                    let g = cascade.observe(window).graph();
                    let mut rng = StdRng::seed_from_u64(1);
                    sample_walks(std::hint::black_box(&g), walk_cfg, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_representation);
criterion_main!(benches);
