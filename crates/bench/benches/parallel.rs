//! Serial-vs-threaded throughput of the parallel execution engine:
//! cascade preprocessing (Fig. 3 sampling + CasLaplacian + Chebyshev
//! bases), a full one-epoch training pass, and a prediction sweep, each at
//! 1 / 2 / 4 worker threads. Results are bit-identical across thread counts
//! (see `docs/performance.md`), so the only thing these numbers measure is
//! wall-clock scaling — on a single-core host the thread counts tie.

use cascn::{try_evaluate, CascnConfig, CascnModel, TrainOpts};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Dataset, Split};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn dataset() -> Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 300,
        seed: 55,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(3600.0, 5, 60)
}

fn cfg(threads: usize) -> CascnConfig {
    CascnConfig {
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 30,
        max_steps: 10,
        threads,
        ..CascnConfig::default()
    }
}

fn bench_preprocess(c: &mut Criterion) {
    let data = dataset();
    let window = 3600.0;
    let mut group = c.benchmark_group("parallel_preprocess");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    cascn::parallel_map(threads, &data.cascades, |_, cascade| {
                        cascn::preprocess(std::hint::black_box(cascade), window, &cfg(threads))
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let data = dataset();
    let window = 3600.0;
    let train: Vec<_> = data.split(Split::Train).iter().take(48).cloned().collect();
    let mut group = c.benchmark_group("parallel_train_epoch");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut model = CascnModel::new(cfg(threads));
                    let opts = TrainOpts {
                        epochs: 1,
                        threads,
                        ..TrainOpts::default()
                    };
                    model.fit(std::hint::black_box(&train), &[], window, &opts)
                })
            },
        );
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let data = dataset();
    let window = 3600.0;
    let test = data.split(Split::Test);
    let model = CascnModel::new(cfg(1));
    let mut group = c.benchmark_group("parallel_evaluate");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| try_evaluate(&model, std::hint::black_box(test), window, threads))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess, bench_train_epoch, bench_evaluate);
criterion_main!(benches);
