//! Compute-core benchmarks: the sparse operator-form Chebyshev conv stack
//! vs. the legacy dense materialized-basis path, swept across cascade
//! sizes and edge densities so the crossover point stays visible in CI
//! output — at toy sizes the dense n×n matmul is competitive; on
//! representative sparse cascades the operator form wins by the
//! O(K·n²·d) → O(K·nnz·d) margin the kernel layer promises.

use cascn_autograd::Tape;
use cascn_graph::{DiGraph, IncrementalSpectral, SpectralBasis};
use cascn_nn::ChebOperands;
use cascn_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const K: usize = 2;
const D: usize = 32;

/// A synthetic cascade DAG over `n` nodes: a random-parent diffusion tree
/// plus `extra` additional cross edges (earlier → later), deterministic in
/// the simple LCG so every run benchmarks the identical structure.
fn cascade_graph(n: usize, extra: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    let mut state = 0x9e3779b97f4a7c15u64 ^ (n as u64) << 8 ^ extra as u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for v in 1..n {
        g.add_edge(next() % v, v, 1.0);
    }
    let mut added = 0;
    while added < extra {
        let v = 1 + next() % (n - 1);
        let u = next() % v;
        g.add_edge(u, v, 1.0);
        added += 1;
    }
    g
}

/// The production directed pipeline: teleportation makes the scaled
/// Laplacian itself dense, so the basis carries a sparse adjacency core
/// plus a rank-1 teleport correction (`from_laplacian` on the dense matrix
/// would hand the "sparse" kernel an n² operator and benchmark nothing).
fn basis_for(g: &DiGraph) -> SpectralBasis {
    SpectralBasis::directed(g, 0.85, None, K)
}

fn features(n: usize) -> Matrix {
    Matrix::from_fn(n, D, |r, c| ((r * 31 + c * 7) % 13) as f32 / 13.0 - 0.5)
}

/// Sparse vs. dense conv-stack across cascade sizes (diffusion trees, the
/// typical per-cascade structure: nnz ≈ 2n−1).
fn bench_conv_stack_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_stack");
    for n in [10usize, 20, 40, 80, 160] {
        let g = cascade_graph(n, 0);
        let basis = basis_for(&g);
        let feat = features(n);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(feat.clone());
                let operands = ChebOperands::sparse(&basis);
                std::hint::black_box(operands.conv_stack(&mut tape, x))
            })
        });
        let bases = basis.materialize();
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(feat.clone());
                let operands = ChebOperands::dense(&mut tape, &bases);
                std::hint::black_box(operands.conv_stack(&mut tape, x))
            })
        });
    }
    group.finish();
}

/// Fixed size, rising edge density: as extra cross edges push nnz toward
/// n², the sparse operator's advantage shrinks — the crossover the dense
/// fallback kernel exists for.
fn bench_conv_stack_density(c: &mut Criterion) {
    let n = 80usize;
    let mut group = c.benchmark_group("conv_stack_density");
    for extra in [0usize, n, 4 * n, 16 * n] {
        let g = cascade_graph(n, extra);
        let basis = basis_for(&g);
        let feat = features(n);
        let label = format!("nnz~{}", n + g.edge_count());
        group.bench_with_input(BenchmarkId::new("sparse", &label), &extra, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(feat.clone());
                let operands = ChebOperands::sparse(&basis);
                std::hint::black_box(operands.conv_stack(&mut tape, x))
            })
        });
        let bases = basis.materialize();
        group.bench_with_input(BenchmarkId::new("dense", &label), &extra, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let x = tape.constant(feat.clone());
                let operands = ChebOperands::dense(&mut tape, &bases);
                std::hint::black_box(operands.conv_stack(&mut tape, x))
            })
        });
    }
    group.finish();
}

/// One streamed adoption event vs. rebuilding the spectral operator from
/// scratch — the `/observe` economics. The incremental arm pays a state
/// clone plus one `push_child` (rank-1 teleport fix-up + warm-started
/// power iteration); the cold arm pays full `from_graph` preprocessing.
/// The gap is the reason the live registry exists, so it stays visible in
/// CI output.
fn bench_incremental_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe_update");
    for n in [20usize, 80, 160] {
        let g = cascade_graph(n, 0);
        // Warm state one node short of `n`; the benched event appends the
        // final node, exactly what one `/observe` does at steady state.
        let prefix = {
            let mut p = DiGraph::new(n - 1);
            for (u, v, w) in g.edges().filter(|&(_, v, _)| v < n - 1) {
                p.add_edge(u, v, w);
            }
            p
        };
        let parent = g
            .edges()
            .find(|&(_, v, _)| v == n - 1)
            .map(|(u, _, _)| u)
            .expect("last node has a parent");
        let warm = IncrementalSpectral::from_graph(&prefix, 0.85, None, K);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut inc = warm.clone();
                inc.push_child(parent);
                std::hint::black_box(inc.basis())
            })
        });
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let inc = IncrementalSpectral::from_graph(&g, 0.85, None, K);
                std::hint::black_box(inc.basis())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv_stack_sizes, bench_conv_stack_density, bench_incremental_vs_cold);
criterion_main!(benches);
