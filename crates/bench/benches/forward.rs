//! End-to-end forward-pass benchmarks: one CasCN prediction vs. the deep
//! baselines, and CasCN's scaling in the Chebyshev order K (Table V's
//! "bigger K increases computational cost").

use cascn::{CascnConfig, CascnModel};
use cascn_baselines::{DeepCas, DeepHawkes, TopoLstm};
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Split};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn dataset() -> (Vec<Cascade>, Cascade) {
    let d = WeiboGenerator::new(WeiboConfig {
        num_cascades: 300,
        seed: 55,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(3600.0, 5, 60);
    let train: Vec<Cascade> = d.split(Split::Train).to_vec();
    let target = d.split(Split::Test)[0].clone();
    (train, target)
}

fn bench_forward_passes(c: &mut Criterion) {
    let (train, target) = dataset();
    let window = 3600.0;
    let mut group = c.benchmark_group("forward_pass");

    let cascn = CascnModel::new(CascnConfig {
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 30,
        max_steps: 10,
        ..CascnConfig::default()
    });
    group.bench_function("CasCN", |b| {
        b.iter(|| cascn.predict_log(std::hint::black_box(&target), window))
    });

    let deepcas = DeepCas::new(&train, window, 8, 1);
    group.bench_function("DeepCas", |b| {
        b.iter(|| {
            use cascn::SizePredictor;
            deepcas.predict_log(std::hint::black_box(&target), window)
        })
    });

    let deephawkes = DeepHawkes::new(&train, window, 8, 1);
    group.bench_function("DeepHawkes", |b| {
        b.iter(|| {
            use cascn::SizePredictor;
            deephawkes.predict_log(std::hint::black_box(&target), window)
        })
    });

    let topo = TopoLstm::new(&train, window, 8, 1);
    group.bench_function("Topo-LSTM", |b| {
        b.iter(|| {
            use cascn::SizePredictor;
            topo.predict_log(std::hint::black_box(&target), window)
        })
    });
    group.finish();
}

fn bench_cascn_in_k(c: &mut Criterion) {
    let (_, target) = dataset();
    let window = 3600.0;
    let mut group = c.benchmark_group("cascn_chebyshev_order");
    for k in [1usize, 2, 3] {
        let model = CascnModel::new(CascnConfig {
            k,
            hidden: 8,
            mlp_hidden: 8,
            max_nodes: 30,
            max_steps: 10,
            ..CascnConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, model| {
            b.iter(|| model.predict_log(std::hint::black_box(&target), window))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_passes, bench_cascn_in_k);
criterion_main!(benches);
