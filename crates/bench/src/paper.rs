//! The paper's reported numbers, used to print "paper vs. measured" rows.
//!
//! Column order everywhere: Weibo 1 h, 2 h, 3 h, HEP-PH 3 y, 5 y, 7 y.

/// Table III — overall MSLE comparison (model name, six MSLE values).
pub const TABLE3: &[(&str, [f32; 6])] = &[
    ("Feature-deep", [3.680, 3.361, 3.296, 1.893, 1.623, 1.619]),
    ("Feature-linear", [3.501, 3.435, 3.324, 1.715, 1.522, 1.471]),
    ("LIS", [3.731, 3.621, 3.457, 2.144, 1.798, 1.787]),
    ("Node2Vec", [3.795, 3.523, 3.513, 2.479, 2.157, 2.096]),
    ("DeepCas", [2.958, 2.689, 2.647, 1.765, 1.538, 1.462]),
    ("Topo-LSTM", [2.772, 2.643, 2.423, 1.684, 1.653, 1.573]),
    ("DeepHawkes", [2.441, 2.287, 2.252, 1.581, 1.470, 1.233]),
    ("CasCN", [2.242, 2.036, 1.910, 1.353, 1.164, 0.851]),
];

/// Table IV — CasCN vs. its variants.
pub const TABLE4: &[(&str, [f32; 6])] = &[
    ("CasCN", [2.242, 2.036, 1.916, 1.350, 1.164, 0.851]),
    ("CasCN-GRU", [2.288, 2.052, 1.965, 1.347, 1.166, 0.874]),
    ("CasCN-Path", [2.557, 2.483, 2.404, 1.664, 1.437, 1.332]),
    ("CasCN-GL", [2.312, 2.028, 1.942, 1.364, 1.357, 1.302]),
    ("CasCN-Undierected", [2.309, 2.132, 1.978, 1.562, 1.425, 1.118]),
    ("CasCN-Time", [2.652, 2.547, 2.363, 1.732, 1.512, 1.451]),
];

/// Table V — parameter impact on the Weibo windows (1 h, 2 h, 3 h).
pub const TABLE5: &[(&str, [f32; 3])] = &[
    ("K=1", [2.284, 2.061, 1.932]),
    ("K=2", [2.242, 2.036, 1.910]),
    ("K=3", [2.312, 2.078, 1.9386]),
    ("lambda_max ~= 2", [2.418, 2.217, 2.046]),
    ("lambda_max = real", [2.242, 2.036, 1.910]),
];

/// Table II — cascade counts per split (Weibo 1/2/3 h, HEP-PH 3/5/7 y).
pub const TABLE2_TRAIN: [f32; 6] = [25_145.0, 29_515.0, 31_780.0, 3_458.0, 3_467.0, 3_478.0];
/// Table II — average observed nodes of the training split.
pub const TABLE2_AVG_NODES_TRAIN: [f32; 6] = [28.58, 29.30, 29.48, 5.27, 5.27, 5.27];
/// Table II — average observed edges of the training split.
pub const TABLE2_AVG_EDGES_TRAIN: [f32; 6] = [27.78, 28.54, 28.74, 4.27, 4.27, 4.27];

/// Fig. 8 — final MSLE per observed-size cap (`size < 10, …, 50`) on Weibo.
pub const FIG8_MSLE_BY_CAP: &[(usize, f32)] = &[
    (10, 2.871),
    (20, 2.744),
    (30, 2.602),
    (40, 2.413),
    (50, 2.331),
];

/// Formats a "measured (paper X)" table cell.
pub fn cell(measured: f32, paper: f32) -> String {
    format!("{measured:.3} (paper {paper:.3})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_eight_models_and_cascn_wins_everywhere() {
        assert_eq!(TABLE3.len(), 8);
        let cascn = TABLE3.iter().find(|(n, _)| *n == "CasCN").unwrap().1;
        for (name, row) in TABLE3 {
            if *name == "CasCN" {
                continue;
            }
            for (c, r) in cascn.iter().zip(row) {
                assert!(c < r, "paper reports CasCN beating {name}");
            }
        }
    }

    #[test]
    fn table4_full_model_wins_most_columns() {
        let full = TABLE4[0].1;
        let mut wins = 0;
        let mut total = 0;
        for (_, row) in &TABLE4[1..] {
            for (f, r) in full.iter().zip(row) {
                total += 1;
                if f <= r {
                    wins += 1;
                }
            }
        }
        // Table IV has a single exception (GRU at 3 years).
        assert!(wins >= total - 2, "full CasCN wins {wins}/{total}");
    }

    #[test]
    fn table5_prefers_k2_and_exact_lambda() {
        let k2 = TABLE5[1].1;
        assert!(k2.iter().zip(&TABLE5[0].1).all(|(a, b)| a <= b));
        assert!(k2.iter().zip(&TABLE5[2].1).all(|(a, b)| a <= b));
        let exact = TABLE5[4].1;
        let approx = TABLE5[3].1;
        assert!(exact.iter().zip(&approx).all(|(a, b)| a < b));
    }
}
