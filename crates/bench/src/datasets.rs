//! Experiment settings: the two datasets and six observation windows of
//! Section V-A, plus the CPU-scale / paper-scale knobs.

use cascn::CascnConfig;
use cascn_cascades::synth::{CitationConfig, CitationGenerator, WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Dataset, Split};

/// Which synthetic dataset a setting uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Weibo-like re-tweet cascades (time unit: seconds).
    Weibo,
    /// HEP-PH-like citation cascades (time unit: days).
    HepPh,
}

impl DatasetKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Weibo => "Weibo",
            DatasetKind::HepPh => "HEP-PH",
        }
    }
}

/// One (dataset, observation window) experiment setting.
#[derive(Debug, Clone, Copy)]
pub struct Setting {
    /// Dataset.
    pub kind: DatasetKind,
    /// Observation window in the dataset's time unit.
    pub window: f64,
    /// Column label ("1 hour", "3 years", …).
    pub label: &'static str,
}

/// The six settings of Tables III/IV: Weibo at 1/2/3 hours, HEP-PH at
/// 3/5/7 years.
pub fn all_settings() -> [Setting; 6] {
    [
        Setting { kind: DatasetKind::Weibo, window: 3600.0, label: "1 hour" },
        Setting { kind: DatasetKind::Weibo, window: 7200.0, label: "2 hours" },
        Setting { kind: DatasetKind::Weibo, window: 10800.0, label: "3 hours" },
        Setting { kind: DatasetKind::HepPh, window: 3.0 * 365.0, label: "3 years" },
        Setting { kind: DatasetKind::HepPh, window: 5.0 * 365.0, label: "5 years" },
        Setting { kind: DatasetKind::HepPh, window: 7.0 * 365.0, label: "7 years" },
    ]
}

/// The three Weibo settings (Table V, Figs. 7/8).
pub fn weibo_settings() -> [Setting; 3] {
    let s = all_settings();
    [s[0], s[1], s[2]]
}

/// Experiment scale: CPU-quick (default) or paper-leaning `--full`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cascades generated per dataset.
    pub num_cascades: usize,
    /// Cap on training cascades per setting.
    pub train_cap: usize,
    /// Cap on validation cascades.
    pub val_cap: usize,
    /// Cap on test cascades.
    pub test_cap: usize,
    /// Max training epochs.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Hidden width of the recurrent baselines.
    pub hidden: usize,
    /// CasCN configuration template.
    pub cascn: CascnConfig,
}

impl Scale {
    /// Single-core-friendly scale (tens of minutes per table).
    pub fn quick() -> Self {
        Self {
            num_cascades: 12_000,
            train_cap: 700,
            val_cap: 150,
            test_cap: 250,
            epochs: 10,
            patience: 5,
            hidden: 16,
            cascn: CascnConfig {
                hidden: 16,
                mlp_hidden: 16,
                max_nodes: 30,
                max_steps: 10,
                ..CascnConfig::default()
            },
        }
    }

    /// Larger runs for machines with time to spare (`--full`).
    pub fn full() -> Self {
        Self {
            num_cascades: 8000,
            train_cap: 1200,
            val_cap: 250,
            test_cap: 350,
            epochs: 20,
            patience: 10,
            hidden: 16,
            cascn: CascnConfig {
                hidden: 16,
                mlp_hidden: 16,
                max_nodes: 50,
                max_steps: 20,
                ..CascnConfig::default()
            },
        }
    }

    /// Picks the scale from CLI args (`--full`), then applies the
    /// `CASCN_TRAIN_CAP` / `CASCN_EPOCHS` / `CASCN_HIDDEN` /
    /// `CASCN_NUM_CASCADES` environment overrides (calibration knobs).
    pub fn from_args() -> Self {
        let mut scale = if std::env::args().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        };
        let env_usize = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = env_usize("CASCN_NUM_CASCADES") {
            scale.num_cascades = v;
        }
        if let Some(v) = env_usize("CASCN_TRAIN_CAP") {
            scale.train_cap = v;
        }
        if let Some(v) = env_usize("CASCN_EPOCHS") {
            scale.epochs = v;
            scale.patience = v;
        }
        if let Some(v) = env_usize("CASCN_HIDDEN") {
            scale.hidden = v;
            scale.cascn.hidden = v;
            scale.cascn.mlp_hidden = v;
        }
        scale
    }
}

/// Generates (deterministically) the dataset for a kind at a scale.
pub fn build(kind: DatasetKind, scale: &Scale) -> Dataset {
    match kind {
        DatasetKind::Weibo => WeiboGenerator::new(WeiboConfig {
            num_cascades: scale.num_cascades,
            ..WeiboConfig::default()
        })
        .generate(),
        DatasetKind::HepPh => CitationGenerator::new(CitationConfig {
            num_cascades: scale.num_cascades,
            ..CitationConfig::default()
        })
        .generate(),
    }
}

/// Observed-size filter bounds per dataset: the paper (following
/// DeepHawkes) drops cascades too small to learn from and truncates giants.
/// HEP-PH cascades are intrinsically smaller (Table II: avg ≈ 5 nodes), so
/// its floor is lower.
pub fn size_bounds(kind: DatasetKind) -> (usize, usize) {
    match kind {
        DatasetKind::Weibo => (10, 100),
        DatasetKind::HepPh => (3, 100),
    }
}

/// Filters, splits and caps a dataset for one setting. Returns
/// `(train, val, test)` cascade vectors.
pub fn prepare(
    dataset: &Dataset,
    setting: &Setting,
    scale: &Scale,
) -> (Vec<Cascade>, Vec<Cascade>, Vec<Cascade>) {
    let (lo, hi) = size_bounds(setting.kind);
    let filtered = dataset.filter_observed_size(setting.window, lo, hi);
    let cap = |s: &[Cascade], n: usize| s.iter().take(n).cloned().collect::<Vec<_>>();
    (
        cap(filtered.split(Split::Train), scale.train_cap),
        cap(filtered.split(Split::Validation), scale.val_cap),
        cap(filtered.split(Split::Test), scale.test_cap),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_settings_cover_both_datasets() {
        let s = all_settings();
        assert_eq!(s.iter().filter(|x| x.kind == DatasetKind::Weibo).count(), 3);
        assert_eq!(s.iter().filter(|x| x.kind == DatasetKind::HepPh).count(), 3);
        assert!(s.windows(2).all(|w| w[0].kind != w[1].kind || w[0].window < w[1].window));
    }

    #[test]
    fn prepare_yields_nonempty_splits_at_quick_scale() {
        let mut scale = Scale::quick();
        scale.num_cascades = 1500; // keep the test fast
        for setting in all_settings() {
            let data = build(setting.kind, &scale);
            let (train, val, test) = prepare(&data, &setting, &scale);
            assert!(
                train.len() >= 50,
                "{} {}: only {} training cascades",
                setting.kind.name(),
                setting.label,
                train.len()
            );
            assert!(!val.is_empty(), "{} {}: empty val", setting.kind.name(), setting.label);
            assert!(!test.is_empty(), "{} {}: empty test", setting.kind.name(), setting.label);
            // All within size bounds.
            let (lo, hi) = size_bounds(setting.kind);
            for c in &train {
                let n = c.size_at(setting.window);
                assert!((lo..=hi).contains(&n));
            }
        }
    }
}
