//! Report output: the `target/experiments/` artifact directory and CSV
//! writing for every experiment binary.

use std::fs;
use std::io;
use std::path::PathBuf;

use cascn_analysis::Table;
use cascn_cascades::io::write_csv;

/// The artifact directory (created on demand). Overridable with the
/// `CASCN_EXPERIMENTS_DIR` environment variable.
pub fn out_dir() -> io::Result<PathBuf> {
    let dir = std::env::var("CASCN_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a rendered table to stdout and its CSV form to
/// `target/experiments/<name>.csv`.
pub fn emit(name: &str, table: &Table) -> io::Result<()> {
    println!("{}", table.render());
    let (header, rows) = table.to_csv_rows();
    let path = out_dir()?.join(format!("{name}.csv"));
    write_csv(&path, &header, &rows)?;
    println!("[written {}]", path.display());
    Ok(())
}

/// Writes raw CSV series (for figures).
pub fn emit_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let path = out_dir()?.join(format!("{name}.csv"));
    write_csv(&path, header, rows)?;
    println!("[written {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_respects_env_override() {
        let tmp = std::env::temp_dir().join("cascn_report_test");
        std::env::set_var("CASCN_EXPERIMENTS_DIR", &tmp);
        let d = out_dir().unwrap();
        assert_eq!(d, tmp);
        assert!(d.exists());
        std::env::remove_var("CASCN_EXPERIMENTS_DIR");
        fs::remove_dir_all(tmp).ok();
    }
}
