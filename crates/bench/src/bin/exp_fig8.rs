//! Reproduces **Fig. 8** — CasCN on small observed cascades (Weibo):
//!
//! * (a) average observed cascade size as a function of observation time
//!   (5–60 minutes);
//! * (b) test MSLE per observed-size cap (`size < 10 … 50`), traced over
//!   training epochs; larger observed cascades are easier (lower MSLE*).
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_fig8 [--full]`.

use cascn::{predictor, CascnModel, TrainOpts};
use cascn_bench::datasets::{build, prepare, weibo_settings, DatasetKind, Scale};
use cascn_bench::{paper, report};
use cascn_cascades::stats;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Fig. 8: small-cascade observations (Weibo) ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);

    // (a) average observed size vs observation time.
    let minutes: Vec<f64> = (1..=12).map(|i| i as f64 * 5.0).collect();
    let times: Vec<f64> = minutes.iter().map(|m| m * 60.0).collect();
    let sizes = stats::avg_observed_size(&weibo, &times);
    println!("(a) avg observed size vs observation minutes:");
    let mut rows = Vec::new();
    for (m, s) in minutes.iter().zip(&sizes) {
        println!("  {m:>4.0} min: {s:.2}");
        rows.push(vec![format!("{m:.0}"), format!("{s:.3}")]);
    }
    report::emit_csv("fig8a", &["minutes", "avg_observed_size"], &rows)?;

    // (b) MSLE per size cap, traced over epochs.
    let setting = weibo_settings()[0]; // 1 hour
    let (train, val, _test) = prepare(&weibo, &setting, &scale);
    let caps = [10usize, 20, 30, 40, 50];
    // The capped test sets use a lower size floor than the training filter
    // (the paper evaluates on small observed cascades, size < 10 included).
    let small_test: Vec<cascn_cascades::Cascade> = weibo
        .filter_observed_size(setting.window, 3, 100)
        .split(cascn_cascades::Split::Test)
        .iter()
        .take(scale.test_cap * 3)
        .cloned()
        .collect();
    let capped_tests: Vec<Vec<cascn_cascades::Cascade>> = caps
        .iter()
        .map(|&cap| {
            small_test
                .iter()
                .filter(|c| c.size_at(setting.window) < cap)
                .cloned()
                .collect()
        })
        .collect();

    let epochs = scale.epochs.max(8);
    let mut model = CascnModel::new(scale.cascn);
    let opts = TrainOpts {
        epochs,
        patience: epochs,
        ..TrainOpts::default()
    };
    let model_view = model.clone();
    let mut trace: Vec<Vec<f32>> = Vec::new();
    model.fit_observed(&train, &val, setting.window, &opts, &mut |epoch, store| {
        // Evaluate each cap with the *current* parameters.
        let mut snapshot = model_view.clone();
        snapshot.set_params(store.clone());
        let row: Vec<f32> = capped_tests
            .iter()
            .map(|subset| {
                if subset.len() < 3 {
                    f32::NAN
                } else {
                    predictor::evaluate(&snapshot, subset, setting.window)
                }
            })
            .collect();
        eprintln!("  epoch {epoch}: msle by cap {row:?}");
        trace.push(row);
    });

    println!("\n(b) test MSLE per observed-size cap, by epoch:");
    println!("epoch  {}", caps.map(|c| format!("<{c:<7}")).join(""));
    let mut rows = Vec::new();
    for (e, row) in trace.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:<8.3}")).collect();
        println!("{:>5}  {}", e + 1, cells.join(""));
        let mut csv = vec![(e + 1).to_string()];
        csv.extend(row.iter().map(|v| format!("{v:.4}")));
        rows.push(csv);
    }
    report::emit_csv(
        "fig8b",
        &["epoch", "cap10", "cap20", "cap30", "cap40", "cap50"],
        &rows,
    )?;

    // Final MSLE* per cap vs paper.
    println!("\nfinal MSLE* per cap (paper values from Fig. 8b):");
    let Some(last) = trace.last() else {
        return Ok(());
    };
    for ((cap, paper_value), measured) in paper::FIG8_MSLE_BY_CAP.iter().zip(last) {
        println!("  size < {cap}: measured {measured:.3} (paper {paper_value:.3})");
    }
    let finite: Vec<f32> = last.iter().copied().filter(|v| v.is_finite()).collect();
    let monotone = finite.windows(2).filter(|w| w[1] <= w[0] + 0.05).count();
    println!(
        "shape check: larger observed caps give lower MSLE in {monotone}/{} adjacent pairs (paper: monotone).",
        finite.len().saturating_sub(1)
    );
    Ok(())
}
