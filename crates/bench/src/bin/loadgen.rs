//! Load generator for `cascn-serve`: concurrent keep-alive clients,
//! client-side latency percentiles, and optional metrics scrape/shutdown.
//!
//! ```text
//! cargo run --release -p cascn-bench --bin loadgen -- \
//!     --addr 127.0.0.1:8077 --requests 200 --concurrency 4 \
//!     --n-cascades 20 --window 25 --print-metrics --shutdown
//! ```
//!
//! Requests draw from a fixed pool of `--n-cascades` synthetic cascades,
//! two per request, rotating — so a run longer than the pool revisits
//! payloads and exercises the server's spectral cache. Exits nonzero if
//! any request fails outright (connection error, unexpected status).
//!
//! With `--observe-ratio R` (0.0–1.0), that fraction of requests is sent
//! as `POST /observe` instead: each one registers a fresh live cascade
//! (unique id per request), exercising the streaming-ingestion path and
//! its LRU registry under load. Observe latencies are reported on their
//! own line.
//!
//! With `--predict-next-ratio R` (0.0–1.0), that fraction of requests is
//! sent as `POST /predict_next?k=K` (next-user checkpoints only — a size
//! model answers 409, which loadgen counts as a hard failure). When a
//! request qualifies as both observe and predict_next, observe wins.
//! Next-user latencies are reported on their own line.
//!
//! Targets: `--addr HOST:PORT` for one server, or `--target-list FILE`
//! (one `HOST:PORT` per line, `#` comments allowed) to spread requests
//! round-robin over a tier — e.g. straight at the replicas behind a
//! `cascn-router`. Before any load is sent, every target is dialed with
//! `--connect-retries` attempts spaced `--connect-backoff-ms` apart, so
//! starting loadgen in the same breath as the server (as the smoke
//! scripts do) no longer races the server's bind.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Cascade;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid {name} `{v}`")),
    }
}

/// Outcome counts plus every successful request's latency in µs, bucketed
/// by the target that served it (index into the target list).
struct WorkerReport {
    ok: usize,
    shed: usize,
    failed: usize,
    per_target_us: Vec<Vec<u64>>,
    observe_ok: usize,
    observe_us: Vec<u64>,
    next_ok: usize,
    next_us: Vec<u64>,
}

impl WorkerReport {
    fn new(n_targets: usize) -> Self {
        Self {
            ok: 0,
            shed: 0,
            failed: 0,
            per_target_us: vec![Vec::new(); n_targets],
            observe_ok: 0,
            observe_us: Vec::new(),
            next_ok: 0,
            next_us: Vec::new(),
        }
    }
}

/// `q`-th percentile of an ascending-sorted latency list (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run(args: &[String]) -> Result<(), String> {
    let targets: Vec<String> = match flag_value(args, "--target-list") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading --target-list {path}: {e}"))?;
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        }
        None => vec![flag_value(args, "--addr")
            .ok_or("missing --addr HOST:PORT (or --target-list FILE)")?
            .to_string()],
    };
    if targets.is_empty() {
        return Err("--target-list named no targets".into());
    }
    let requests: usize = parse_or(args, "--requests", 100)?;
    let concurrency: usize = parse_or(args, "--concurrency", 4)?.max(1);
    let window: f64 = parse_or(args, "--window", 25.0)?;
    let n_cascades: usize = parse_or(args, "--n-cascades", 20)?.max(2);
    let seed: u64 = parse_or(args, "--seed", 7)?;
    let observe_ratio: f64 = parse_or(args, "--observe-ratio", 0.0)?;
    if !(0.0..=1.0).contains(&observe_ratio) {
        return Err(format!("--observe-ratio {observe_ratio} must be in [0, 1]"));
    }
    let next_ratio: f64 = parse_or(args, "--predict-next-ratio", 0.0)?;
    if !(0.0..=1.0).contains(&next_ratio) {
        return Err(format!("--predict-next-ratio {next_ratio} must be in [0, 1]"));
    }
    let top_k: usize = parse_or(args, "--k", 10)?.max(1);
    let connect_retries: usize = parse_or(args, "--connect-retries", 20)?;
    let connect_backoff = Duration::from_millis(parse_or(args, "--connect-backoff-ms", 50u64)?);
    let print_metrics = args.iter().any(|a| a == "--print-metrics");
    let shutdown = args.iter().any(|a| a == "--shutdown");

    // Don't let a racing startup read as load-test failures: a server
    // launched a moment ago may not have bound yet.
    for target in &targets {
        wait_ready(target, connect_retries, connect_backoff)?;
    }

    // A fixed pool of payload bodies; request i sends pool[i % len].
    let dataset = WeiboGenerator::new(WeiboConfig {
        num_cascades: n_cascades,
        seed,
        max_size: 40,
    })
    .generate();
    let bodies: Vec<String> = dataset
        .cascades
        .chunks(2)
        .map(serialize_cascades)
        .collect();
    // Observe payloads reuse the pool's event structure but remap the id
    // per request, so every observe registers a distinct live cascade.
    let observe_pool: Vec<&Cascade> = dataset.cascades.iter().collect();

    let started = Instant::now();
    let reports: Vec<WorkerReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|w| {
                let targets = &targets;
                let bodies = &bodies;
                // Worker w sends requests w, w+C, w+2C, … so the request
                // count is exact for any concurrency.
                let observe_pool = &observe_pool;
                s.spawn(move || {
                    let mut report = WorkerReport::new(targets.len());
                    // One cached keep-alive connection per target.
                    let mut conns: Vec<Option<BufReader<TcpStream>>> =
                        (0..targets.len()).map(|_| None).collect();
                    for i in (w..requests).step_by(concurrency) {
                        let ti = i % targets.len();
                        let addr = targets[ti].as_str();
                        // Request i is an observe exactly when the running
                        // observe quota crosses an integer — the stream
                        // interleaves the two kinds at the requested ratio.
                        let is_observe = observe_ratio > 0.0
                            && ((i + 1) as f64 * observe_ratio).floor()
                                > (i as f64 * observe_ratio).floor();
                        let is_next = !is_observe
                            && next_ratio > 0.0
                            && ((i + 1) as f64 * next_ratio).floor()
                                > (i as f64 * next_ratio).floor();
                        let observe_body = if is_observe {
                            let c = observe_pool[i % observe_pool.len()];
                            Some(serialize_observe(c, 1_000_000 + i as u64))
                        } else {
                            None
                        };
                        let (path, body) = match &observe_body {
                            Some(b) => (format!("/observe?window={window}"), b.as_str()),
                            None if is_next => (
                                format!("/predict_next?window={window}&k={top_k}"),
                                bodies[i % bodies.len()].as_str(),
                            ),
                            None => {
                                (format!("/predict?window={window}"), bodies[i % bodies.len()].as_str())
                            }
                        };
                        let t0 = Instant::now();
                        // A send error on a cached keep-alive connection
                        // usually means the server closed it; one retry on
                        // a fresh connection separates that from real
                        // failures.
                        let mut outcome = send_post(&mut conns[ti], addr, &path, body);
                        if outcome.is_err() {
                            outcome = send_post(&mut conns[ti], addr, &path, body);
                        }
                        match outcome {
                            Ok(200) => {
                                report.ok += 1;
                                let us =
                                    t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                                if is_observe {
                                    report.observe_ok += 1;
                                    report.observe_us.push(us);
                                } else if is_next {
                                    report.next_ok += 1;
                                    report.next_us.push(us);
                                } else {
                                    report.per_target_us[ti].push(us);
                                }
                            }
                            Ok(503) => report.shed += 1,
                            Ok(status) => {
                                eprintln!("request {i}: unexpected status {status}");
                                report.failed += 1;
                            }
                            Err(e) => {
                                eprintln!("request {i}: {e}");
                                report.failed += 1;
                                conns[ti] = None;
                            }
                        }
                    }
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => {
                    let mut r = WorkerReport::new(targets.len());
                    r.failed += 1;
                    r
                }
            })
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut per_target: Vec<Vec<u64>> = vec![Vec::new(); targets.len()];
    let (mut ok, mut shed, mut failed) = (0usize, 0usize, 0usize);
    let mut observe_ok = 0usize;
    let mut observe_us: Vec<u64> = Vec::new();
    let mut next_ok = 0usize;
    let mut next_us: Vec<u64> = Vec::new();
    for r in reports {
        ok += r.ok;
        shed += r.shed;
        failed += r.failed;
        observe_ok += r.observe_ok;
        observe_us.extend(r.observe_us);
        next_ok += r.next_ok;
        next_us.extend(r.next_us);
        for (bucket, ls) in per_target.iter_mut().zip(r.per_target_us) {
            bucket.extend(ls);
        }
    }
    let mut latencies: Vec<u64> = per_target.iter().flatten().copied().collect();
    latencies.sort_unstable();
    println!(
        "loadgen: {ok} ok, {shed} shed, {failed} failed in {elapsed:.2}s ({:.1} req/s)",
        ok as f64 / elapsed.max(1e-9)
    );
    println!(
        "client latency: p50 {}us  p90 {}us  p99 {}us",
        percentile(&latencies, 0.5),
        percentile(&latencies, 0.9),
        percentile(&latencies, 0.99)
    );
    // The line format is stable for scripts (fleet_smoke parses it into
    // BENCH_serve.json).
    if observe_ratio > 0.0 {
        observe_us.sort_unstable();
        println!(
            "observe: {observe_ok} ok, p50 {}us p99 {}us (ratio {observe_ratio:.2})",
            percentile(&observe_us, 0.5),
            percentile(&observe_us, 0.99)
        );
    }
    if next_ratio > 0.0 {
        next_us.sort_unstable();
        println!(
            "predict_next: {next_ok} ok, p50 {}us p99 {}us (ratio {next_ratio:.2} k {top_k})",
            percentile(&next_us, 0.5),
            percentile(&next_us, 0.99)
        );
    }
    // Per-target breakdown: with a --target-list spreading load over a
    // replica tier, one slow replica shows up here even when the pooled
    // percentiles look healthy. The line format is stable for scripts
    // (fleet_smoke parses it into BENCH_serve.json).
    if targets.len() > 1 {
        for (ti, (addr, bucket)) in targets.iter().zip(&mut per_target).enumerate() {
            bucket.sort_unstable();
            println!(
                "target[{ti}] {addr}: {} ok, p50 {}us p99 {}us",
                bucket.len(),
                percentile(bucket, 0.5),
                percentile(bucket, 0.99)
            );
        }
    }

    if print_metrics {
        let text = simple_request(&targets[0], "GET", "/metrics")?;
        print!("{text}");
    }
    if shutdown {
        let _ = simple_request(&targets[0], "POST", "/shutdown")?;
        println!("loadgen: shutdown sent");
    }
    if failed > 0 || ok == 0 {
        return Err(format!("{failed} failed requests, {ok} ok"));
    }
    Ok(())
}

/// Blocks until `addr` accepts a TCP connection, retrying with a fixed
/// backoff. `retries == 0` skips the check entirely.
fn wait_ready(addr: &str, retries: usize, backoff: Duration) -> Result<(), String> {
    let mut last_err = String::new();
    for attempt in 0..retries {
        match TcpStream::connect(addr) {
            Ok(_) => return Ok(()),
            Err(e) => last_err = e.to_string(),
        }
        if attempt + 1 < retries {
            std::thread::sleep(backoff);
        }
    }
    if retries == 0 {
        return Ok(());
    }
    Err(format!("target {addr} not reachable after {retries} attempts: {last_err}"))
}

/// Writes cascades in the server's request text format.
fn serialize_cascades(cascades: &[Cascade]) -> String {
    let mut s = String::new();
    for c in cascades {
        s.push_str(&format!("cascade {} {}\n", c.id, c.start_time));
        for e in &c.events {
            let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            s.push_str(&format!("event {} {parent} {}\n", e.user, e.time));
        }
    }
    s
}

/// Serializes one cascade as an `/observe` body under a caller-chosen id,
/// so every observe registers a distinct live cascade.
fn serialize_observe(c: &Cascade, id: u64) -> String {
    let mut s = format!("cascade {id} {}\n", c.start_time);
    for e in &c.events {
        let parent = e.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
        s.push_str(&format!("event {} {parent} {}\n", e.user, e.time));
    }
    s
}

/// Sends one POST over a cached keep-alive connection, reconnecting on
/// demand. Returns the response status.
fn send_post(
    conn: &mut Option<BufReader<TcpStream>>,
    addr: &str,
    path: &str,
    body: &str,
) -> Result<u16, String> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        *conn = Some(BufReader::new(stream));
    }
    let Some(reader) = conn.as_mut() else {
        return Err("no connection".into());
    };
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let outcome = (|| -> Result<(u16, bool), String> {
        reader
            .get_mut()
            .write_all(raw.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let (status, _body, keep_alive) = read_response(reader)?;
        Ok((status, keep_alive))
    })();
    match outcome {
        Ok((status, keep_alive)) => {
            // The server says when it will close (shed responses, errors);
            // reusing such a connection would hit a dead socket.
            if !keep_alive {
                *conn = None;
            }
            Ok(status)
        }
        Err(e) => {
            *conn = None;
            Err(e)
        }
    }
}

/// One request on a fresh connection; returns the body.
fn simple_request(addr: &str, method: &str, path: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let raw = format!("{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
    reader
        .get_mut()
        .write_all(raw.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let (status, body, _) = read_response(&mut reader)?;
    if status != 200 {
        return Err(format!("{method} {path}: status {status}: {body}"));
    }
    Ok(body)
}

/// Reads one HTTP/1.1 response: status, body, and whether the server will
/// keep the connection alive.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String, bool), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", status_line.trim()))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("eof inside headers".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad content-length: {e}"))?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                keep_alive = false;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned(), keep_alive))
}
