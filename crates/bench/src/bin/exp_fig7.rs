//! Reproduces **Fig. 7** — CasCN validation loss per epoch for Chebyshev
//! order K ∈ {1, 2, 3} on Weibo (1 hour): losses decline steadily and no K
//! dominates by a wide margin.
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_fig7 [--full]`.

use cascn::{CascnConfig, CascnModel, TrainOpts};
use cascn_bench::datasets::{build, prepare, weibo_settings, DatasetKind, Scale};
use cascn_bench::report;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Fig. 7: validation loss vs. epoch for K in {{1,2,3}} ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);
    let setting = weibo_settings()[0];
    let (train, val, _test) = prepare(&weibo, &setting, &scale);

    let epochs = scale.epochs.max(8);
    let mut curves: Vec<(usize, Vec<f32>)> = Vec::new();
    for k in [1usize, 2, 3] {
        let cfg = CascnConfig { k, ..scale.cascn };
        let mut model = CascnModel::new(cfg);
        let opts = TrainOpts {
            epochs,
            patience: epochs, // no early stop: we want the full curve
            ..TrainOpts::default()
        };
        let history = model.fit(&train, &val, setting.window, &opts);
        let losses: Vec<f32> = history.records().iter().map(|r| r.val_loss).collect();
        eprintln!("  K={k}: val losses {losses:?}");
        curves.push((k, losses));
    }

    let mut rows = Vec::new();
    println!("epoch  K=1      K=2      K=3");
    for e in 0..epochs {
        let vals: Vec<f32> = curves.iter().map(|(_, c)| c.get(e).copied().unwrap_or(f32::NAN)).collect();
        println!("{:>5}  {:<8.3} {:<8.3} {:<8.3}", e + 1, vals[0], vals[1], vals[2]);
        rows.push(vec![
            (e + 1).to_string(),
            format!("{:.4}", vals[0]),
            format!("{:.4}", vals[1]),
            format!("{:.4}", vals[2]),
        ]);
    }
    report::emit_csv("fig7", &["epoch", "k1_val_loss", "k2_val_loss", "k3_val_loss"], &rows)?;

    for (k, losses) in &curves {
        let first = losses.first().copied().unwrap_or(f32::NAN);
        let last = losses.iter().copied().fold(f32::INFINITY, f32::min);
        println!("K={k}: first epoch {first:.3} → best {last:.3} (paper: steady decline)");
    }
    Ok(())
}
