//! Reproduces **Table IV** — CasCN against its five ablation variants
//! (GRU gating, random-walk input, GCN-then-LSTM, undirected Laplacian,
//! no time decay).
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_table4 [--full]`.

use cascn_analysis::Table;
use cascn_bench::datasets::{all_settings, build, prepare, DatasetKind, Scale};
use cascn_bench::runner::{run, ModelKind};
use cascn_bench::{paper, report};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Table IV: CasCN vs. its variants ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);
    let hepph = build(DatasetKind::HepPh, &scale);
    let settings = all_settings();
    let splits: Vec<_> = settings
        .iter()
        .map(|s| {
            let data = match s.kind {
                DatasetKind::Weibo => &weibo,
                DatasetKind::HepPh => &hepph,
            };
            prepare(data, s, &scale)
        })
        .collect();

    let mut header = vec!["variant".to_string()];
    header.extend(settings.iter().map(|s| format!("{} {}", s.kind.name(), s.label)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut measured: Vec<(String, [f32; 6])> = Vec::new();
    for (name, kind) in ModelKind::table4(&scale) {
        let mut row = vec![name.clone()];
        let mut values = [0.0f32; 6];
        for (i, setting) in settings.iter().enumerate() {
            let (train, val, test) = &splits[i];
            let result = run(&kind, train, val, test, setting.window, &scale);
            values[i] = result.msle;
            // Match paper rows (note the paper's "Undierected" typo).
            let paper_value = paper::TABLE4
                .iter()
                .find(|(n, _)| n.replace("ierected", "irected") == name || *n == name)
                .map(|(_, v)| v[i])
                .unwrap_or(f32::NAN);
            row.push(paper::cell(result.msle, paper_value));
            eprintln!(
                "  [{name} @ {} {}] msle {:.3} in {:.1}s",
                setting.kind.name(),
                setting.label,
                result.msle,
                result.seconds
            );
        }
        measured.push((name, values));
        table.push(row);
    }
    report::emit("table4", &table)?;

    let full = measured[0].1;
    println!("\nshape check (paper: full CasCN beats each variant in most columns):");
    for (name, row) in &measured[1..] {
        let wins = full.iter().zip(row).filter(|(f, r)| f <= r).count();
        println!("  vs {name}: full model better or equal in {wins}/6 settings");
    }
    Ok(())
}
