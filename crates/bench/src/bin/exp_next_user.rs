//! Microscopic next-user prediction — CasCN's masked softmax head vs the
//! Topo-LSTM baseline, scored with Hit@1/5/10 and MAP on the Weibo
//! settings. (The CasCN paper itself only evaluates macroscopic size; the
//! microscopic protocol follows Topo-LSTM: rank the uninfected vocabulary
//! by next-adopter probability at the end of the observation window.)
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_next_user
//! [--full]`. Writes `next_user.csv` to the experiments directory.
//!
//! **Dataset note.** The macroscopic Weibo preset draws adopter
//! *identities* uniformly (influence only shapes offspring counts), so
//! who-adopts-next is unlearnable by construction there. This experiment
//! raises the generator's `adopter_tournament` to 8, concentrating
//! adoptions on high-influence users the way real social data does, so
//! the microscopic task carries signal. Everything else (windows, size
//! bounds, splits, caps) matches the macroscopic protocol.

use std::time::Instant;

use cascn::{CascnConfig, CascnModel, TaskKind, TrainOpts};
use cascn_analysis::Table;
use cascn_baselines::TopoLstm;
use cascn_bench::datasets::{prepare, weibo_settings, Scale};
use cascn_bench::report;
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::Cascade;
use cascn_nn::metrics;

/// Hit@1/5/10 and MAP from a rank list.
fn score(ranks: &[usize]) -> [f32; 4] {
    [
        metrics::hit_at_k(ranks, 1),
        metrics::hit_at_k(ranks, 5),
        metrics::hit_at_k(ranks, 10),
        metrics::mean_average_precision(ranks),
    ]
}

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Microscopic next-user prediction: Hit@k / MAP, Weibo settings ==\n");

    let mut bcfg = *WeiboGenerator::new(WeiboConfig {
        num_cascades: scale.num_cascades,
        ..WeiboConfig::default()
    })
    .branching();
    bcfg.adopter_tournament = 8;
    let weibo = WeiboGenerator::from_branching(bcfg).generate();
    // The vocabulary covers every user in the *unfiltered* dataset, the
    // same derivation the `cascn` CLI and `cascn-serve` agree on.
    let max_user = weibo
        .cascades
        .iter()
        .flat_map(|c| c.events.iter().map(|e| e.user))
        .max()
        .unwrap_or(0);
    let vocab_users = usize::try_from(max_user).unwrap_or(usize::MAX - 1) + 1;

    let mut table = Table::new(&["model", "metric", "W 1h", "W 2h", "W 3h"]);
    let mut rows: Vec<(String, String, [f32; 3])> = Vec::new();
    let settings = weibo_settings();
    let mut per_setting: Vec<[[f32; 4]; 2]> = Vec::new();

    for setting in &settings {
        let (train, val, test) = prepare(&weibo, setting, &scale);
        let opts = TrainOpts {
            epochs: scale.epochs,
            patience: scale.patience,
            ..TrainOpts::default()
        };

        let t0 = Instant::now();
        let cfg = CascnConfig {
            task: TaskKind::NextUser,
            vocab_users,
            ..scale.cascn
        };
        let mut cascn = CascnModel::new(cfg);
        cascn.fit_next_user(&train, &val, setting.window, &opts);
        let cascn_scores = score(&cascn.next_user_ranks(&test, setting.window));
        eprintln!(
            "  [CasCN @ {}] hit@10 {:.4} map {:.4} in {:.1}s",
            setting.label,
            cascn_scores[2],
            cascn_scores[3],
            t0.elapsed().as_secs_f64()
        );

        let t0 = Instant::now();
        let mut topo = TopoLstm::new_next_user(&train, setting.window, scale.hidden, 7);
        topo.fit_next_user(&train, &val, setting.window, &opts);
        let topo_ranks: Vec<usize> = test
            .iter()
            .filter_map(|c: &Cascade| topo.next_user_rank(c, setting.window))
            .collect();
        let topo_scores = score(&topo_ranks);
        eprintln!(
            "  [Topo-LSTM @ {}] hit@10 {:.4} map {:.4} in {:.1}s",
            setting.label,
            topo_scores[2],
            topo_scores[3],
            t0.elapsed().as_secs_f64()
        );
        per_setting.push([cascn_scores, topo_scores]);
    }

    for (mi, model) in ["CasCN", "Topo-LSTM"].iter().enumerate() {
        for (ni, metric) in ["Hit@1", "Hit@5", "Hit@10", "MAP"].iter().enumerate() {
            let vals = [
                per_setting[0][mi][ni],
                per_setting[1][mi][ni],
                per_setting[2][mi][ni],
            ];
            rows.push(((*model).into(), (*metric).into(), vals));
        }
    }
    for (model, metric, vals) in &rows {
        table.push(vec![
            model.clone(),
            metric.clone(),
            format!("{:.4}", vals[0]),
            format!("{:.4}", vals[1]),
            format!("{:.4}", vals[2]),
        ]);
    }
    report::emit("next_user", &table)?;

    // Shape summary: CasCN's masked head should rank no worse than the
    // dedicated microscopic baseline on Hit@10. The generator's
    // popularity signal is capturable by both models' user-bias terms,
    // so near-ties are the expected outcome — count them as holding
    // within one test-set prediction's worth of Hit@10 mass.
    let eps = 1.5 / 700.0;
    let wins = per_setting
        .iter()
        .filter(|s| s[0][2] >= s[1][2] - eps)
        .count();
    println!("\nshape check: CasCN >= Topo-LSTM (within one-prediction tolerance) on Hit@10 in {wins}/3 Weibo windows.");
    Ok(())
}
