//! Reproduces **Fig. 9** — what CasCN's learned cascade representations
//! encode:
//!
//! * (a)/(b) heatmaps of the representation `h(C_i(t))`, rows sorted by the
//!   true increment — outbreak vs. non-outbreak cascades show distinct
//!   patterns;
//! * (c)–(h) t-SNE layouts of the representations colored by hand-crafted
//!   features (leaf nodes, mean time) and by the ground-truth increment —
//!   features whose coloring correlates with the increment coloring are the
//!   informative ones.
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_fig9 [--full]`.

use cascn::{CascnModel, TrainOpts};
use cascn_analysis::{pearson, render_heatmap, tsne, HeatmapOptions, TsneConfig};
use cascn_bench::datasets::{all_settings, build, prepare, DatasetKind, Scale};
use cascn_bench::report;
use cascn_cascades::features;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Fig. 9: representation heatmaps and t-SNE ==\n");

    for (kind, setting_idx) in [(DatasetKind::Weibo, 0usize), (DatasetKind::HepPh, 3usize)] {
        let setting = all_settings()[setting_idx];
        let data = build(kind, &scale);
        let (train, val, test) = prepare(&data, &setting, &scale);
        println!(
            "training CasCN on {} {} ({} cascades)…",
            kind.name(),
            setting.label,
            train.len()
        );
        let mut model = CascnModel::new(scale.cascn);
        let opts = TrainOpts {
            epochs: scale.epochs,
            patience: scale.patience,
            ..TrainOpts::default()
        };
        model.fit(&train, &val, setting.window, &opts);

        // Representations + per-cascade metadata on the test set.
        let mut rows: Vec<(Vec<f32>, usize, f32, f32)> = Vec::new(); // (rep, increment, leaves, mean_time)
        let names = features::feature_names();
        // lint: allow(no-panic) — feature_names() is a static list that contains both entries
        let leaf_idx = names.iter().position(|n| n == "num_leaves").unwrap();
        // lint: allow(no-panic) — feature_names() is a static list that contains both entries
        let mt_idx = names.iter().position(|n| n == "mean_time").unwrap();
        for c in &test {
            let rep = model.representation(c, setting.window);
            let f = features::extract(&c.observe(setting.window), setting.window);
            rows.push((rep, c.increment_size(setting.window), f[leaf_idx], f[mt_idx]));
        }

        // (a)/(b): heatmap sorted by increment.
        let mut sorted: Vec<&(Vec<f32>, usize, f32, f32)> = rows.iter().collect();
        sorted.sort_by_key(|r| r.1);
        let stride = (sorted.len() / 24).max(1);
        let heat_rows: Vec<Vec<f32>> = sorted.iter().step_by(stride).map(|r| r.0.clone()).collect();
        let labels: Vec<String> = sorted
            .iter()
            .step_by(stride)
            .map(|r| format!("dS={}", r.1))
            .collect();
        let heat = render_heatmap(
            &heat_rows,
            &HeatmapOptions {
                row_labels: labels,
                title: format!(
                    "{} representation heatmap (rows sorted by true increment)",
                    kind.name()
                ),
            },
        );
        println!("{heat}");

        // (c)-(h): t-SNE + correlations.
        let reps: Vec<Vec<f32>> = rows.iter().map(|r| r.0.clone()).collect();
        if reps.len() >= 10 {
            let layout = tsne(&reps, &TsneConfig::default());
            let mut csv = Vec::new();
            for (p, r) in layout.iter().zip(&rows) {
                csv.push(vec![
                    format!("{:.4}", p[0]),
                    format!("{:.4}", p[1]),
                    r.1.to_string(),
                    format!("{:.3}", r.2),
                    format!("{:.3}", r.3),
                ]);
            }
            report::emit_csv(
                &format!("fig9_tsne_{}", kind.name().to_lowercase().replace('-', "")),
                &["x", "y", "increment", "num_leaves", "mean_time"],
                &csv,
            )?;
        }

        let inc: Vec<f64> = rows.iter().map(|r| ((r.1 + 1) as f64).ln()).collect();
        let leaves: Vec<f64> = rows.iter().map(|r| r.2 as f64).collect();
        let mean_time: Vec<f64> = rows.iter().map(|r| r.3 as f64).collect();
        // First representation PC proxy: the representation's own norm.
        let rep_norm: Vec<f64> = rows
            .iter()
            .map(|r| r.0.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt())
            .collect();
        println!("feature ↔ log-increment correlations on the test set:");
        println!("  num_leaves: {:+.3} (paper: leaf count is informative)", pearson(&leaves, &inc));
        println!("  mean_time:  {:+.3} (paper: mean time is informative)", pearson(&mean_time, &inc));
        println!(
            "  |h(C)| representation norm: {:+.3} (learned representation separates sizes)",
            pearson(&rep_norm, &inc)
        );
        println!();
    }
    Ok(())
}
