//! Canonical training-side performance record.
//!
//! `cargo run --release -p cascn-bench --bin record -- [--check] [--out PATH] [--baseline PATH]`
//!
//! Measures the CasCN hot path on a fixed synthetic workload — preprocess
//! throughput, one-epoch training time, forward-pass p50/p99 under the
//! default sparse Chebyshev kernel — plus the dense-kernel comparison
//! (speedup and max prediction delta) and the microscopic next-user
//! scores (Hit@10 / MAP after a short deterministic train), and writes
//! the result to `BENCH_train.json` at the invocation directory.
//!
//! `--check` additionally gates the run against the checked-in
//! `bench-baseline.json` (the perf analogue of the `lint-baseline.json`
//! ratchet): hard machine-independent gates on `sparse_speedup` and
//! `accuracy_delta`, and generous ratio bands on the wall-clock numbers so
//! only catastrophic regressions (a kernel silently falling back to the
//! dense path, preprocessing re-materializing bases) trip CI rather than
//! scheduler noise.

use std::fmt::Write as _;
use std::time::Instant;

use cascn::{
    preprocess, CascnConfig, CascnModel, ChebKernel, PreprocessedCascade, TaskKind, TrainOpts,
};
use cascn_autograd::Tape;
use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
use cascn_cascades::{Cascade, Dataset, Split};
use cascn_nn::{metrics, ChebOperands};
use cascn_tensor::Matrix;

const WINDOW: f64 = 3600.0;
const FORWARD_TARGETS: usize = 24;
const FORWARD_REPS: usize = 5;
const CONV_REPS: usize = 200;

fn cfg(kernel: ChebKernel) -> CascnConfig {
    CascnConfig {
        k: 2,
        hidden: 8,
        mlp_hidden: 8,
        max_nodes: 40,
        max_steps: 10,
        seed: 9,
        cheb_kernel: kernel,
        ..CascnConfig::default()
    }
}

/// Forward-latency configuration: paper-scale hidden width and node
/// padding, because the kernel comparison is about the serving hot path on
/// realistic cascades — at toy sizes the dense n×n matmul is too small for
/// the sparse operator's savings to show.
fn fwd_cfg(kernel: ChebKernel) -> CascnConfig {
    CascnConfig {
        k: 2,
        hidden: 32,
        max_nodes: 100,
        max_steps: 20,
        seed: 9,
        cheb_kernel: kernel,
        ..CascnConfig::default()
    }
}

fn workload() -> Dataset {
    WeiboGenerator::new(WeiboConfig {
        num_cascades: 200,
        seed: 77,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(WINDOW, 5, 80)
}

/// `q`-th percentile of an ascending-sorted list of µs samples.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Per-call forward latencies (µs, sorted ascending) over preprocessed
/// samples — the spectral basis is computed once up front, exactly like the
/// serving tier's cache, so the numbers isolate the convolution kernel
/// rather than the shared preprocessing pipeline.
fn forward_latencies(model: &CascnModel, samples: &[PreprocessedCascade]) -> Vec<u64> {
    // One untimed pass absorbs lazy one-time costs (allocator warm-up).
    for s in samples {
        std::hint::black_box(model.predict_log_sample(s));
    }
    let mut out = Vec::with_capacity(samples.len() * FORWARD_REPS);
    for _ in 0..FORWARD_REPS {
        for s in samples {
            let t0 = Instant::now();
            std::hint::black_box(model.predict_log_sample(s));
            out.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    out.sort_unstable();
    out
}

/// p50 latency (µs) of one Chebyshev conv-stack application on an `n×d`
/// feature block — the per-gate unit of work the sparse kernel optimizes.
/// Basis materialization / tape-constant entry happens outside the timed
/// region for the dense kernel, mirroring the serving tier's cached bases.
fn conv_stack_p50(sample: &PreprocessedCascade, dense: bool, d: usize) -> u64 {
    let n = sample.basis.num_nodes();
    let feat = Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 7) % 13) as f32 / 13.0 - 0.5);
    let bases = dense.then(|| sample.basis.materialize());
    let mut lat = Vec::with_capacity(CONV_REPS);
    for _ in 0..CONV_REPS {
        let mut tape = Tape::new();
        let x = tape.constant(feat.clone());
        let operands = match &bases {
            Some(b) => ChebOperands::dense(&mut tape, b),
            None => ChebOperands::sparse(&sample.basis),
        };
        let t0 = Instant::now();
        std::hint::black_box(operands.conv_stack(&mut tape, x));
        lat.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    lat.sort_unstable();
    percentile(&lat, 0.5)
}

struct Record {
    preprocess_cascades_per_s: f64,
    epoch_seconds: f64,
    forward_p50_us: u64,
    forward_p99_us: u64,
    dense_forward_p50_us: u64,
    conv_sparse_p50_us: u64,
    conv_dense_p50_us: u64,
    sparse_speedup: f64,
    accuracy_delta: f64,
    next_user_hit10: f64,
    next_user_map: f64,
}

fn measure() -> Record {
    let data = workload();
    let train: Vec<Cascade> = data.split(Split::Train).to_vec();
    let val: Vec<Cascade> = data.split(Split::Validation).to_vec();
    // Forward targets: the largest observed cascades, so the latency
    // percentiles describe the hot path near the padding cap instead of
    // trivial five-node graphs.
    let mut by_size: Vec<Cascade> = data.cascades.to_vec();
    by_size.sort_by_key(|c| std::cmp::Reverse(c.events.len()));
    let targets: Vec<Cascade> = by_size.into_iter().take(FORWARD_TARGETS).collect();
    eprintln!(
        "record: {} train / {} val / {} forward targets",
        train.len(),
        val.len(),
        targets.len()
    );

    // Preprocess throughput under the default sparse kernel.
    let sparse_cfg = cfg(ChebKernel::Sparse);
    let t0 = Instant::now();
    for c in data.cascades.iter() {
        std::hint::black_box(preprocess(c, WINDOW, &sparse_cfg));
    }
    let preprocess_cascades_per_s = data.cascades.len() as f64 / t0.elapsed().as_secs_f64();

    // Forward-pass latency: sparse (the shipped default) vs. dense (the
    // legacy materialized-basis kernel). Same seed, so the two models hold
    // bit-identical parameters and differ only in the convolution kernel.
    let sparse = CascnModel::new(fwd_cfg(ChebKernel::Sparse));
    let dense = CascnModel::new(fwd_cfg(ChebKernel::Dense));
    let sparse_samples: Vec<PreprocessedCascade> = targets
        .iter()
        .map(|c| preprocess(c, WINDOW, sparse.config()))
        .collect();
    let dense_samples: Vec<PreprocessedCascade> = targets
        .iter()
        .map(|c| preprocess(c, WINDOW, dense.config()))
        .collect();
    let sparse_lat = forward_latencies(&sparse, &sparse_samples);
    let dense_lat = forward_latencies(&dense, &dense_samples);
    let forward_p50_us = percentile(&sparse_lat, 0.5);
    let forward_p99_us = percentile(&sparse_lat, 0.99);
    let dense_forward_p50_us = percentile(&dense_lat, 0.5);

    // Conv-stage speedup on the largest (most representative) cascade:
    // this isolates the Chebyshev convolution the tentpole moved from
    // O(K·n²·d) to O(K·nnz·d); whole-forward latency above also carries the
    // kernel-independent gate matmuls, pooling, and MLP.
    let big = &sparse_samples[0];
    let conv_sparse_p50_us = conv_stack_p50(big, false, 32);
    let conv_dense_p50_us = conv_stack_p50(big, true, 32);
    let sparse_speedup = conv_dense_p50_us as f64 / conv_sparse_p50_us.max(1) as f64;

    let accuracy_delta = targets
        .iter()
        .map(|c| {
            f64::from((sparse.predict_log(c, WINDOW) - dense.predict_log(c, WINDOW)).abs())
        })
        .fold(0.0f64, f64::max);

    // One training epoch, serial, under the sparse kernel.
    let opts = TrainOpts {
        epochs: 1,
        patience: 1,
        threads: 1,
        ..TrainOpts::default()
    };
    let mut model = CascnModel::new(cfg(ChebKernel::Sparse));
    let t0 = Instant::now();
    model.fit(&train, &val, WINDOW, &opts);
    let epoch_seconds = t0.elapsed().as_secs_f64();

    // Microscopic task: a short next-user training run on its own small
    // workload, scored with Hit@10 / MAP over every prefix in the dataset
    // (train included — the gate is a functional floor on the masked
    // ranking path, not a generalization claim; at this scale the head
    // mostly learns the global popularity prior). Thread-invariant
    // training makes the scores exactly deterministic for the fixed seed,
    // so the baseline gates them as hard accuracy floors rather than
    // timing bands.
    let next_data = WeiboGenerator::new(WeiboConfig {
        num_cascades: 200,
        seed: 9,
        max_size: 200,
    })
    .generate()
    .filter_observed_size(WINDOW, 3, usize::MAX);
    let max_user = next_data
        .cascades
        .iter()
        .flat_map(|c| c.events.iter().map(|e| e.user))
        .max()
        .unwrap_or(0);
    let next_cfg = CascnConfig {
        k: 2,
        hidden: 4,
        mlp_hidden: 4,
        max_nodes: 10,
        max_steps: 5,
        seed: 9,
        cheb_kernel: ChebKernel::Sparse,
        task: TaskKind::NextUser,
        vocab_users: usize::try_from(max_user).unwrap_or(usize::MAX - 1) + 1,
        ..CascnConfig::default()
    };
    let next_opts = TrainOpts {
        epochs: 2,
        patience: 2,
        threads: 0,
        ..TrainOpts::default()
    };
    let next_train: Vec<Cascade> = next_data.split(Split::Train).to_vec();
    let next_val: Vec<Cascade> = next_data.split(Split::Validation).to_vec();
    let mut next_model = CascnModel::new(next_cfg);
    next_model.fit_next_user(&next_train, &next_val, WINDOW, &next_opts);
    let ranks = next_model.next_user_ranks(&next_data.cascades, WINDOW);
    let next_user_hit10 = f64::from(metrics::hit_at_k(&ranks, 10));
    let next_user_map = f64::from(metrics::mean_average_precision(&ranks));

    Record {
        preprocess_cascades_per_s,
        epoch_seconds,
        forward_p50_us,
        forward_p99_us,
        dense_forward_p50_us,
        conv_sparse_p50_us,
        conv_dense_p50_us,
        sparse_speedup,
        accuracy_delta,
        next_user_hit10,
        next_user_map,
    }
}

fn to_json(r: &Record) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"cascn-bench-train/v1\",");
    let _ = writeln!(
        out,
        "  \"train_config\": {{ \"k\": 2, \"hidden\": 8, \"max_nodes\": 40, \"max_steps\": 10 }},"
    );
    let _ = writeln!(
        out,
        "  \"forward_config\": {{ \"k\": 2, \"hidden\": 32, \"max_nodes\": 100, \"max_steps\": 20 }},"
    );
    let _ = writeln!(
        out,
        "  \"preprocess_cascades_per_s\": {:.1},",
        r.preprocess_cascades_per_s
    );
    let _ = writeln!(out, "  \"epoch_seconds\": {:.3},", r.epoch_seconds);
    let _ = writeln!(out, "  \"forward_p50_us\": {},", r.forward_p50_us);
    let _ = writeln!(out, "  \"forward_p99_us\": {},", r.forward_p99_us);
    let _ = writeln!(out, "  \"dense_forward_p50_us\": {},", r.dense_forward_p50_us);
    let _ = writeln!(out, "  \"conv_sparse_p50_us\": {},", r.conv_sparse_p50_us);
    let _ = writeln!(out, "  \"conv_dense_p50_us\": {},", r.conv_dense_p50_us);
    let _ = writeln!(out, "  \"sparse_speedup\": {:.2},", r.sparse_speedup);
    let _ = writeln!(out, "  \"accuracy_delta\": {:e},", r.accuracy_delta);
    let _ = writeln!(out, "  \"next_user_hit10\": {:.4},", r.next_user_hit10);
    let _ = writeln!(out, "  \"next_user_map\": {:.4}", r.next_user_map);
    let _ = writeln!(out, "}}");
    out
}

/// Pull `"key": <number>` out of a flat JSON object. Good enough for the
/// baseline file this tool itself maintains; no nesting, no strings.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(r: &Record, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let num = |key: &str| {
        json_number(&text, key).ok_or_else(|| format!("baseline is missing \"{key}\""))
    };
    let min_speedup = num("min_sparse_speedup")?;
    let max_delta = num("max_accuracy_delta")?;
    let band = num("timing_band")?;
    let mut failures = Vec::new();

    // Hard gates: machine-independent, so zero tolerance for drift.
    if r.sparse_speedup < min_speedup {
        failures.push(format!(
            "sparse_speedup {:.2} < required {min_speedup:.2} (sparse kernel no longer beats dense)",
            r.sparse_speedup
        ));
    }
    if r.accuracy_delta > max_delta {
        failures.push(format!(
            "accuracy_delta {:e} > allowed {max_delta:e} (kernels disagree beyond the gate)",
            r.accuracy_delta
        ));
    }
    let min_hit10 = num("min_next_user_hit10")?;
    if r.next_user_hit10 < min_hit10 {
        failures.push(format!(
            "next_user_hit10 {:.4} < required {min_hit10:.4} (masked ranking head regressed)",
            r.next_user_hit10
        ));
    }

    // Soft gates: wall-clock within a generous ratio band of the recorded
    // baseline — catches order-of-magnitude regressions, tolerates noise.
    let banded = [
        ("forward_p50_us", r.forward_p50_us as f64),
        ("epoch_seconds", r.epoch_seconds),
        ("preprocess_cascades_per_s", r.preprocess_cascades_per_s),
    ];
    for (key, measured) in banded {
        let expect = num(key)?;
        if measured > expect * band || measured < expect / band {
            failures.push(format!(
                "{key} {measured:.1} outside [{:.1}, {:.1}] ({band}x band around baseline {expect:.1})",
                expect / band,
                expect * band
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn flag_value(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a.starts_with("--")
            && !matches!(a.as_str(), "--check" | "--out" | "--baseline")
        {
            eprintln!("unknown flag `{a}`");
            std::process::exit(2);
        }
    }
    let do_check = args.iter().any(|a| a == "--check");
    let out_path = flag_value(&args, "--out", "BENCH_train.json");
    let baseline_path = flag_value(&args, "--baseline", "bench-baseline.json");

    let record = measure();
    let json = to_json(&record);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("record: wrote {out_path}");

    if do_check {
        match check(&record, &baseline_path) {
            Ok(()) => eprintln!("record: --check OK against {baseline_path}"),
            Err(msg) => {
                eprintln!("record: --check FAILED against {baseline_path}:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}
