//! **Extension ablation** (DESIGN.md §5): the paper's *learned*
//! non-parametric time decay (Eq. 15–16) against the parametric kernels
//! prior work assumes (power-law / exponential / Rayleigh, Section IV-D)
//! and against no decay at all (`CasCN-Time`).
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_ablation_decay [--full]`.

use cascn::{CascnConfig, DecayMode};
use cascn_analysis::Table;
use cascn_bench::datasets::{build, prepare, weibo_settings, DatasetKind, Scale};
use cascn_bench::report;
use cascn_bench::runner::{run, ModelKind};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Decay ablation: learned vs. parametric kernels (Weibo) ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);
    let settings = weibo_settings();
    let splits: Vec<_> = settings.iter().map(|s| prepare(&weibo, s, &scale)).collect();

    let modes = [
        ("learned (paper)", DecayMode::Learned),
        ("power-law prior", DecayMode::PowerLaw),
        ("exponential prior", DecayMode::Exponential),
        ("Rayleigh prior", DecayMode::Rayleigh),
        ("no decay (CasCN-Time)", DecayMode::None),
    ];

    let mut header = vec!["decay".to_string()];
    header.extend(settings.iter().map(|s| format!("Weibo {}", s.label)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut measured = Vec::new();
    for (name, mode) in modes {
        let cfg = CascnConfig {
            decay: mode,
            ..scale.cascn
        };
        let mut row = vec![name.to_string()];
        let mut values = [0.0f32; 3];
        for (i, setting) in settings.iter().enumerate() {
            let (train, val, test) = &splits[i];
            let result = run(&ModelKind::Cascn(cfg), train, val, test, setting.window, &scale);
            values[i] = result.msle;
            row.push(format!("{:.3}", result.msle));
            eprintln!("  [{name} @ Weibo {}] msle {:.3} in {:.1}s", setting.label, result.msle, result.seconds);
        }
        measured.push((name, values));
        table.push(row);
    }
    report::emit("ablation_decay", &table)?;

    let avg = |v: &[f32; 3]| v.iter().sum::<f32>() / 3.0;
    let learned = avg(&measured[0].1);
    println!("\nshape check (paper §IV-D: the learned decay avoids parametric priors):");
    for (name, values) in &measured[1..] {
        println!(
            "  learned {:.3} vs {name} {:.3} → learned better: {}",
            learned,
            avg(values),
            learned <= avg(values)
        );
    }
    Ok(())
}
