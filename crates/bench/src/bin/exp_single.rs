//! Calibration tool: train one model on one setting and print MSLE/time.
//!
//! `cargo run --release -p cascn-bench --bin exp_single -- <model> <setting-idx 0..5> [--full]`
//!
//! Models: feature-linear, feature-deep, lis, node2vec, deepcas, topolstm,
//! deephawkes, cascn, cascn-gl, cascn-path. Scale env knobs apply
//! (`CASCN_TRAIN_CAP`, `CASCN_EPOCHS`, `CASCN_HIDDEN`, `CASCN_NUM_CASCADES`).

use cascn_bench::datasets::{all_settings, build, prepare, Scale};
use cascn_bench::runner::{run, ModelKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_name = args.get(1).map(String::as_str).unwrap_or("cascn");
    let setting_idx: usize = args
        .get(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let scale = Scale::from_args();
    let setting = all_settings()[setting_idx.min(5)];
    let kind = match model_name {
        "feature-linear" => ModelKind::FeatureLinear,
        "feature-deep" => ModelKind::FeatureDeep,
        "lis" => ModelKind::Lis,
        "node2vec" => ModelKind::Node2Vec,
        "deepcas" => ModelKind::DeepCas,
        "topolstm" => ModelKind::TopoLstm,
        "deephawkes" => ModelKind::DeepHawkes,
        "cascn" => ModelKind::Cascn(scale.cascn),
        "cascn-gl" => ModelKind::CascnGl(scale.cascn),
        "cascn-path" => ModelKind::CascnPath(scale.cascn),
        other => {
            eprintln!("unknown model `{other}`");
            std::process::exit(2);
        }
    };
    let data = build(setting.kind, &scale);
    let (train, val, test) = prepare(&data, &setting, &scale);
    eprintln!(
        "{model_name} @ {} {}: {} train / {} val / {} test, epochs {}",
        setting.kind.name(),
        setting.label,
        train.len(),
        val.len(),
        test.len(),
        scale.epochs
    );
    let result = run(&kind, &train, &val, &test, setting.window, &scale);
    if let Some(h) = &result.history {
        for r in h.records() {
            eprintln!("  epoch {:>2}: train {:.3}, val {:.3}", r.epoch, r.train_loss, r.val_loss);
        }
    }
    println!(
        "{model_name} @ {} {}: msle {:.4} ({:.1}s)",
        setting.kind.name(),
        setting.label,
        result.msle,
        result.seconds
    );
}
