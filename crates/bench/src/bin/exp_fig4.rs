//! Reproduces **Fig. 4** — cascade-size distributions of both datasets on
//! log-log axes (heavy-tailed, roughly straight lines).
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_fig4 [--full]`.

use cascn_bench::datasets::{build, DatasetKind, Scale};
use cascn_bench::report;
use cascn_cascades::stats;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Fig. 4: cascade size distributions ==\n");
    for kind in [DatasetKind::Weibo, DatasetKind::HepPh] {
        let data = build(kind, &scale);
        let hist = stats::size_distribution(&data);
        println!("{} (log2-binned):", kind.name());
        let max_count = hist.iter().map(|&(_, c)| c).max().unwrap_or(1);
        let mut rows = Vec::new();
        for &(size, count) in &hist {
            let bar_len = if count == 0 {
                0
            } else {
                (40.0 * (count as f64).ln() / (max_count as f64).ln()).round() as usize
            };
            println!("  size>={size:<6} {count:>6} {}", "#".repeat(bar_len));
            rows.push(vec![size.to_string(), count.to_string()]);
        }
        let slope = stats::power_law_slope(&data);
        match slope {
            Some(s) => println!(
                "  fitted log-log slope: {s:.2} (paper: straight line on log-log ⇒ power law)\n"
            ),
            None => println!("  not enough bins for a slope fit\n"),
        }
        report::emit_csv(
            &format!("fig4_{}", kind.name().to_lowercase().replace('-', "")),
            &["size_bin", "count"],
            &rows,
        )?;
    }
    Ok(())
}
