//! Serving-side perf ratchet: gate `BENCH_serve.json` (written by
//! `scripts/fleet_smoke.sh`) against the checked-in `serve-baseline.json`.
//!
//! `cargo run --release -p cascn-bench --bin serve_check -- \
//!     [--check] [--bench PATH] [--baseline PATH]`
//!
//! The serving analogue of `record --check`: hard machine-independent
//! gates on correctness-adjacent counters (zero non-503 client errors
//! across the failover window, a warm-started replica actually serving
//! warm hits, the streaming and next-user paths exercised at all), and
//! generous ratio bands on the wall-clock latencies (router p50/p99 and
//! the `/predict_next` percentiles) so only order-of-magnitude
//! regressions trip CI rather than scheduler noise. Without `--check` it
//! just prints the extracted numbers, which is handy when re-baselining.

use std::process::exit;

/// Pull `"key": <number>` out of a flat JSON slice. Matches the first
/// occurrence, so callers scope the slice to one object via [`section`].
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `{ … }` object following `"name":`, brace-balanced so nested
/// objects inside the section stay inside the returned slice.
fn section<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

struct Bench {
    router_p50_us: f64,
    router_p99_us: f64,
    non_503_errors: f64,
    warm_hit_rate: f64,
    observe_ok: f64,
    streamed_events: f64,
    next_ok: f64,
    next_p50_us: f64,
    next_p99_us: f64,
}

fn parse_bench(text: &str) -> Result<Bench, String> {
    let sect = |name: &str| {
        section(text, name).ok_or_else(|| format!("bench file has no \"{name}\" section"))
    };
    let num = |slice: &str, key: &str, ctx: &str| {
        json_number(slice, key).ok_or_else(|| format!("bench {ctx} section is missing \"{key}\""))
    };
    let router = sect("router")?;
    let failover = sect("failover_window")?;
    let warm = sect("warm_start")?;
    let observe = sect("observe")?;
    let next = sect("predict_next")?;
    Ok(Bench {
        router_p50_us: num(router, "p50_us", "router")?,
        router_p99_us: num(router, "p99_us", "router")?,
        non_503_errors: num(failover, "non_503_errors", "failover_window")?,
        warm_hit_rate: num(warm, "warm_hit_rate", "warm_start")?,
        observe_ok: num(observe, "ok", "observe")?,
        streamed_events: num(observe, "streamed_events_total", "observe")?,
        next_ok: num(next, "ok", "predict_next")?,
        next_p50_us: num(next, "p50_us", "predict_next")?,
        next_p99_us: num(next, "p99_us", "predict_next")?,
    })
}

fn check(b: &Bench, baseline: &str) -> Result<(), String> {
    let num = |key: &str| {
        json_number(baseline, key).ok_or_else(|| format!("baseline is missing \"{key}\""))
    };
    let band = num("timing_band")?;
    let mut failures = Vec::new();

    // Hard gates: machine-independent contract counters.
    if b.non_503_errors > num("max_non_503_errors")? {
        failures.push(format!(
            "failover_window.non_503_errors {} > allowed {} (clients saw hard errors during failover)",
            b.non_503_errors,
            num("max_non_503_errors")?
        ));
    }
    if b.warm_hit_rate < num("min_warm_hit_rate")? {
        failures.push(format!(
            "warm_hit_rate {:.4} < required {:.4} (restarted replica is not serving from its snapshot)",
            b.warm_hit_rate,
            num("min_warm_hit_rate")?
        ));
    }
    if b.observe_ok < num("min_observe_ok")? || b.streamed_events < 1.0 {
        failures.push(format!(
            "observe path underexercised (ok {}, streamed_events_total {})",
            b.observe_ok, b.streamed_events
        ));
    }
    if b.next_ok < num("min_predict_next_ok")? {
        failures.push(format!(
            "predict_next.ok {} < required {} (next-user serving path underexercised)",
            b.next_ok,
            num("min_predict_next_ok")?
        ));
    }

    // Banded gates: wall-clock within a generous ratio band of the
    // recorded baseline — catches order-of-magnitude regressions only.
    let router = section(baseline, "router").ok_or("baseline has no \"router\" section")?;
    let next = section(baseline, "predict_next")
        .ok_or("baseline has no \"predict_next\" section")?;
    let banded = [
        ("router.p50_us", b.router_p50_us, json_number(router, "p50_us")),
        ("router.p99_us", b.router_p99_us, json_number(router, "p99_us")),
        ("predict_next.p50_us", b.next_p50_us, json_number(next, "p50_us")),
        ("predict_next.p99_us", b.next_p99_us, json_number(next, "p99_us")),
    ];
    for (key, measured, expect) in banded {
        let Some(expect) = expect else {
            failures.push(format!("baseline is missing \"{key}\""));
            continue;
        };
        if measured > expect * band || measured < expect / band {
            failures.push(format!(
                "{key} {measured:.0} outside [{:.0}, {:.0}] ({band}x band around baseline {expect:.0})",
                expect / band,
                expect * band
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn flag_value(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a.starts_with("--") && !matches!(a.as_str(), "--check" | "--bench" | "--baseline") {
            eprintln!("unknown flag `{a}`");
            exit(2);
        }
    }
    let do_check = args.iter().any(|a| a == "--check");
    let bench_path = flag_value(&args, "--bench", "BENCH_serve.json");
    let baseline_path = flag_value(&args, "--baseline", "serve-baseline.json");

    let text = match std::fs::read_to_string(&bench_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serve_check: cannot read {bench_path}: {e}");
            exit(1);
        }
    };
    let bench = match parse_bench(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve_check: {bench_path}: {e}");
            exit(1);
        }
    };
    println!(
        "serve_check: router p50 {:.0}us p99 {:.0}us, warm_hit_rate {:.4}, \
         observe ok {:.0} ({:.0} events), predict_next ok {:.0} p50 {:.0}us p99 {:.0}us",
        bench.router_p50_us,
        bench.router_p99_us,
        bench.warm_hit_rate,
        bench.observe_ok,
        bench.streamed_events,
        bench.next_ok,
        bench.next_p50_us,
        bench.next_p99_us
    );

    if do_check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve_check: cannot read baseline {baseline_path}: {e}");
                exit(1);
            }
        };
        match check(&bench, &baseline) {
            Ok(()) => println!("serve_check: --check OK against {baseline_path}"),
            Err(msg) => {
                eprintln!("serve_check: --check FAILED against {baseline_path}:\n{msg}");
                exit(1);
            }
        }
    }
}
