//! Reproduces **Table II** — dataset statistics: cascade counts and average
//! observed nodes/edges per split for every observation window.
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_table2 [--full]`.

use cascn_analysis::Table;
use cascn_bench::datasets::{all_settings, build, prepare, DatasetKind, Scale};
use cascn_bench::{paper, report};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Table II: dataset statistics (synthetic stand-ins) ==\n");
    let weibo = build(DatasetKind::Weibo, &scale);
    let hepph = build(DatasetKind::HepPh, &scale);
    println!(
        "generated: {} cascades ({}), {} cascades ({})",
        weibo.cascades.len(),
        weibo.name,
        hepph.cascades.len(),
        hepph.name
    );
    println!(
        "total edges: weibo {}, hepph {} (paper: 8,466,858 / 421,578)\n",
        weibo.total_edges(),
        hepph.total_edges()
    );

    let mut table = Table::new(&[
        "setting",
        "split",
        "cascades",
        "avg nodes",
        "avg edges",
        "paper(train: n/avg nodes/avg edges)",
    ]);
    for (i, setting) in all_settings().into_iter().enumerate() {
        let data = match setting.kind {
            DatasetKind::Weibo => &weibo,
            DatasetKind::HepPh => &hepph,
        };
        let (train, val, test) = prepare(data, &setting, &{
            // Table II reports the full filtered splits, so lift the caps.
            let mut s = scale;
            s.train_cap = usize::MAX;
            s.val_cap = usize::MAX;
            s.test_cap = usize::MAX;
            s
        });
        let stats = |cs: &[cascn_cascades::Cascade]| {
            let n = cs.len().max(1);
            let nodes: usize = cs.iter().map(|c| c.size_at(setting.window)).sum();
            let edges: usize = cs.iter().map(|c| c.size_at(setting.window) - 1).sum();
            (cs.len(), nodes as f64 / n as f64, edges as f64 / n as f64)
        };
        for (split_name, cs) in [("train", &train), ("val", &val), ("test", &test)] {
            let (count, avg_n, avg_e) = stats(cs);
            let paper_note = if split_name == "train" {
                format!(
                    "{:.0} / {:.2} / {:.2}",
                    paper::TABLE2_TRAIN[i],
                    paper::TABLE2_AVG_NODES_TRAIN[i],
                    paper::TABLE2_AVG_EDGES_TRAIN[i]
                )
            } else {
                String::new()
            };
            table.push(vec![
                format!("{} {}", setting.kind.name(), setting.label),
                split_name.to_string(),
                count.to_string(),
                format!("{avg_n:.2}"),
                format!("{avg_e:.2}"),
                paper_note,
            ]);
        }
    }
    report::emit("table2", &table)?;
    println!(
        "shape check: like the paper, HEP-PH splits are ~10x smaller than Weibo's\n\
         and average observed sizes are far larger on Weibo than HEP-PH."
    );
    Ok(())
}
