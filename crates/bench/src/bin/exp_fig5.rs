//! Reproduces **Fig. 5** — popularity saturation curves: the fraction of a
//! cascade's eventual adoptions that have arrived by time t. The paper uses
//! these curves to pick observation windows (Weibo saturates within 24 h;
//! HEP-PH reaches ≈50/60/70 % at 3/5/7 years).
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_fig5 [--full]`.

use cascn_bench::datasets::{build, DatasetKind, Scale};
use cascn_bench::report;
use cascn_cascades::stats;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Fig. 5: popularity vs. time ==\n");

    for (kind, horizon, unit, marks) in [
        (
            DatasetKind::Weibo,
            24.0 * 3600.0,
            "hours",
            vec![(1.0 / 24.0, "1h"), (2.0 / 24.0, "2h"), (3.0 / 24.0, "3h")],
        ),
        (
            DatasetKind::HepPh,
            3720.0,
            "years",
            vec![
                (3.0 * 365.0 / 3720.0, "3y (paper ~50%)"),
                (5.0 * 365.0 / 3720.0, "5y (paper ~60%)"),
                (7.0 * 365.0 / 3720.0, "7y (paper ~70%)"),
            ],
        ),
    ] {
        let data = build(kind, &scale);
        let curve = stats::popularity_curve(&data, horizon, 48);
        println!("{} ({} scale):", kind.name(), unit);
        let mut rows = Vec::new();
        for &(t, frac) in &curve {
            let bar = "#".repeat((40.0 * frac).round() as usize);
            if rows.len() % 4 == 0 {
                println!("  t={:>6.2} {frac:>5.1}% {bar}", t / horizon * 100.0, frac = frac * 100.0);
            }
            rows.push(vec![format!("{t:.1}"), format!("{frac:.4}")]);
        }
        for (frac_t, label) in marks {
            let idx = (frac_t * 48.0f64).round().min(48.0) as usize;
            println!("  at {label}: {:.1}% of final popularity", curve[idx].1 * 100.0);
        }
        println!();
        report::emit_csv(
            &format!("fig5_{}", kind.name().to_lowercase().replace('-', "")),
            &["time", "fraction_of_final"],
            &rows,
        )?;
    }
    println!(
        "shape check: Weibo saturates within its 24h horizon (steep early growth),\n\
         HEP-PH grows over years and is still rising late — matching Fig. 5(a)/(b)."
    );
    Ok(())
}
