//! Reproduces **Table V** — parameter impact on the Weibo windows:
//! Chebyshev order K ∈ {1, 2, 3} and exact vs. approximated λ_max.
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_table5 [--full]`.

use cascn::{CascnConfig, LambdaMax};
use cascn_analysis::Table;
use cascn_bench::datasets::{build, prepare, weibo_settings, DatasetKind, Scale};
use cascn_bench::runner::{run, ModelKind};
use cascn_bench::{paper, report};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Table V: parameter impact (Weibo) ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);
    let settings = weibo_settings();
    let splits: Vec<_> = settings.iter().map(|s| prepare(&weibo, s, &scale)).collect();

    let grid: Vec<(String, CascnConfig)> = vec![
        ("K=1".into(), CascnConfig { k: 1, ..scale.cascn }),
        ("K=2".into(), CascnConfig { k: 2, ..scale.cascn }),
        ("K=3".into(), CascnConfig { k: 3, ..scale.cascn }),
        (
            "lambda_max ~= 2".into(),
            CascnConfig { lambda_max: LambdaMax::Approx2, ..scale.cascn },
        ),
        (
            "lambda_max = real".into(),
            CascnConfig { lambda_max: LambdaMax::Exact, ..scale.cascn },
        ),
    ];

    let mut header = vec!["parameter".to_string()];
    header.extend(settings.iter().map(|s| format!("Weibo {}", s.label)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut measured = Vec::new();
    for (name, cfg) in &grid {
        let mut row = vec![name.clone()];
        let mut values = [0.0f32; 3];
        for (i, setting) in settings.iter().enumerate() {
            let (train, val, test) = &splits[i];
            let result = run(&ModelKind::Cascn(*cfg), train, val, test, setting.window, &scale);
            values[i] = result.msle;
            let paper_value = paper::TABLE5
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v[i])
                .unwrap_or(f32::NAN);
            row.push(paper::cell(result.msle, paper_value));
            eprintln!(
                "  [{name} @ Weibo {}] msle {:.3} in {:.1}s",
                setting.label, result.msle, result.seconds
            );
        }
        measured.push((name.clone(), values));
        table.push(row);
    }
    report::emit("table5", &table)?;

    let avg = |v: &[f32; 3]| v.iter().sum::<f32>() / 3.0;
    let k2 = avg(&measured[1].1);
    println!("\nshape check:");
    println!(
        "  K=2 vs K=1: {:.3} vs {:.3} (paper: K=2 slightly better)",
        k2,
        avg(&measured[0].1)
    );
    println!(
        "  K=2 vs K=3: {:.3} vs {:.3} (paper: K=2 slightly better, K=3 costlier)",
        k2,
        avg(&measured[2].1)
    );
    println!(
        "  exact lambda vs ~=2: {:.3} vs {:.3} (paper: exact better)",
        avg(&measured[4].1),
        avg(&measured[3].1)
    );
    Ok(())
}
