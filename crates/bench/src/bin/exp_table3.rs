//! Reproduces **Table III** — overall MSLE comparison of all eight methods
//! across the six (dataset, window) settings.
//!
//! Run with `cargo run --release -p cascn-bench --bin exp_table3 [--full]`.
//! Absolute MSLE differs from the paper (synthetic data, CPU budget); the
//! reproduction target is the ordering: CasCN < DeepHawkes < other deep
//! models < feature/embedding/diffusion baselines.

use cascn_analysis::Table;
use cascn_bench::datasets::{all_settings, build, prepare, DatasetKind, Scale};
use cascn_bench::runner::{run, ModelKind};
use cascn_bench::{paper, report};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_args();
    println!("== Table III: MSLE of all methods across settings ==\n");

    let weibo = build(DatasetKind::Weibo, &scale);
    let hepph = build(DatasetKind::HepPh, &scale);
    let settings = all_settings();

    // Prepare all six splits once.
    let splits: Vec<_> = settings
        .iter()
        .map(|s| {
            let data = match s.kind {
                DatasetKind::Weibo => &weibo,
                DatasetKind::HepPh => &hepph,
            };
            prepare(data, s, &scale)
        })
        .collect();

    let mut header = vec!["model".to_string()];
    header.extend(settings.iter().map(|s| format!("{} {}", s.kind.name(), s.label)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut measured: Vec<(String, [f32; 6])> = Vec::new();
    for (name, kind) in ModelKind::table3(&scale) {
        let mut row = vec![name.clone()];
        let mut values = [0.0f32; 6];
        for (i, setting) in settings.iter().enumerate() {
            let (train, val, test) = &splits[i];
            let result = run(&kind, train, val, test, setting.window, &scale);
            values[i] = result.msle;
            let paper_value = paper::TABLE3
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v[i])
                .unwrap_or(f32::NAN);
            row.push(paper::cell(result.msle, paper_value));
            eprintln!(
                "  [{name} @ {} {}] msle {:.3} in {:.1}s",
                setting.kind.name(),
                setting.label,
                result.msle,
                result.seconds
            );
        }
        measured.push((name, values));
        table.push(row);
    }
    report::emit("table3", &table)?;

    // Shape summary.
    // lint: allow(no-panic) — every queried name was pushed into `measured` in the loop above
    let get = |n: &str| measured.iter().find(|(m, _)| m == n).map(|(_, v)| *v).unwrap();
    let cascn = get("CasCN");
    let mut wins = 0;
    for (name, row) in &measured {
        if name == "CasCN" {
            continue;
        }
        wins += cascn.iter().zip(row).filter(|(c, r)| c < r).count();
    }
    println!("\nshape check: CasCN wins {wins}/42 comparisons (paper: 42/42).");
    let longer_window_helps = (0..2).all(|i| cascn[i] >= cascn[i + 1] - 0.5)
        && (3..5).all(|i| cascn[i] >= cascn[i + 1] - 0.5);
    println!("longer observation windows help (paper trend): {longer_window_helps}");
    Ok(())
}
