//! Experiment harness for the CasCN reproduction: dataset settings, paper
//! reference numbers, the model runner, and report output.
//!
//! Each `exp_*` binary under `src/bin/` regenerates one table or figure of
//! the paper (see `DESIGN.md` §4 for the index) and prints measured numbers
//! next to the paper's, writing CSV artifacts under `target/experiments/`.
//!
//! Absolute MSLE values are not expected to match the paper — the datasets
//! are synthetic stand-ins and the training budget is CPU-scale — but the
//! *shape* (who wins, by roughly what factor, where the trends point) is the
//! reproduction target.

pub mod datasets;
pub mod paper;
pub mod report;
pub mod runner;
