//! Trains and evaluates any of the paper's models on one setting.

use std::time::Instant;

use cascn::{CascnConfig, CascnModel, GlModel, PathModel, TrainOpts, Variant};
use cascn_baselines::{
    DeepCas, DeepHawkes, FeatureDeep, FeatureLinear, Lis, Node2VecModel, TopoLstm,
};
use cascn_baselines::{LisConfig, Node2VecModelConfig};
use cascn_cascades::Cascade;
use cascn_nn::train::History;

use crate::datasets::Scale;

/// Which model to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// Ridge regression over hand-crafted features.
    FeatureLinear,
    /// MLP over hand-crafted features.
    FeatureDeep,
    /// Latent influence/susceptibility.
    Lis,
    /// node2vec embeddings + MLP.
    Node2Vec,
    /// Walks + bi-GRU + attention.
    DeepCas,
    /// DAG-structured LSTM.
    TopoLstm,
    /// Paths + GRU + learned decay.
    DeepHawkes,
    /// CasCN with an explicit configuration (covers the Table IV/V grids).
    Cascn(CascnConfig),
    /// The CasCN-GL architecture variant.
    CascnGl(CascnConfig),
    /// The CasCN-Path architecture variant.
    CascnPath(CascnConfig),
}

impl ModelKind {
    /// The Table III model list, in paper order.
    pub fn table3(scale: &Scale) -> Vec<(String, ModelKind)> {
        vec![
            ("Feature-deep".into(), ModelKind::FeatureDeep),
            ("Feature-linear".into(), ModelKind::FeatureLinear),
            ("LIS".into(), ModelKind::Lis),
            ("Node2Vec".into(), ModelKind::Node2Vec),
            ("DeepCas".into(), ModelKind::DeepCas),
            ("Topo-LSTM".into(), ModelKind::TopoLstm),
            ("DeepHawkes".into(), ModelKind::DeepHawkes),
            ("CasCN".into(), ModelKind::Cascn(scale.cascn)),
        ]
    }

    /// The Table IV variant list, in paper order.
    pub fn table4(scale: &Scale) -> Vec<(String, ModelKind)> {
        Variant::all()
            .into_iter()
            .map(|v| {
                let kind = match v {
                    Variant::Gl => ModelKind::CascnGl(scale.cascn),
                    Variant::Path => ModelKind::CascnPath(scale.cascn),
                    other => ModelKind::Cascn(scale.cascn.with_variant(other)),
                };
                (v.name().to_string(), kind)
            })
            .collect()
    }
}

/// Result of one train+eval run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Test MSLE (Eq. 20).
    pub msle: f32,
    /// Wall-clock seconds for training + evaluation.
    pub seconds: f64,
    /// Per-epoch loss history (for models trained with the shared loop).
    pub history: Option<History>,
}

/// Trains `kind` on `(train, val)` and evaluates MSLE on `test`.
pub fn run(
    kind: &ModelKind,
    train: &[Cascade],
    val: &[Cascade],
    test: &[Cascade],
    window: f64,
    scale: &Scale,
) -> RunResult {
    let started = Instant::now();
    let opts = TrainOpts {
        epochs: scale.epochs,
        patience: scale.patience,
        ..TrainOpts::default()
    };
    let (msle, history): (f32, Option<History>) = match kind {
        ModelKind::FeatureLinear => {
            let model = FeatureLinear::fit(train, val, window);
            (cascn::evaluate(&model, test, window), None)
        }
        ModelKind::FeatureDeep => {
            let mut model = FeatureDeep::new(1);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::Lis => {
            let model = Lis::fit(train, window, &LisConfig::default());
            (cascn::evaluate(&model, test, window), None)
        }
        ModelKind::Node2Vec => {
            let (model, h) =
                Node2VecModel::fit(train, val, window, Node2VecModelConfig::default(), &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::DeepCas => {
            let mut model = DeepCas::new(train, window, scale.hidden, 1);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::TopoLstm => {
            let mut model = TopoLstm::new(train, window, scale.hidden, 1);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::DeepHawkes => {
            let mut model = DeepHawkes::new(train, window, scale.hidden, 1);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::Cascn(cfg) => {
            let mut model = CascnModel::new(*cfg);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::CascnGl(cfg) => {
            let mut model = GlModel::new(*cfg);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
        ModelKind::CascnPath(cfg) => {
            let mut model = PathModel::new(*cfg, train, window);
            let h = model.fit(train, val, window, &opts);
            (cascn::evaluate(&model, test, window), Some(h))
        }
    };
    RunResult {
        msle,
        seconds: started.elapsed().as_secs_f64(),
        history,
    }
}
