//! Topo-LSTM (Wang et al., ICDM 2017): a DAG-structured LSTM. Nodes are
//! processed in adoption order; each node's incoming state is the mean of
//! its parents' states, so the recurrence follows the cascade topology
//! instead of a flat sequence. The original predicts node activations; as
//! in the paper, the classifier head is replaced by a size regressor.

use cascn::{trainer, SizePredictor, TrainOpts};
use cascn_autograd::{ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::train::History;
use cascn_nn::{metrics, Activation, Embedding, LstmCell, Mlp, NextUserHead, Vocab};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A cascade reduced to its topological node/parent arrays.
#[derive(Debug, Clone)]
pub struct TopoSample {
    /// Vocabulary index of each observed adopter (adoption order).
    nodes: Vec<usize>,
    /// Parent position (within `nodes`) of each adopter; `None` for roots.
    parents: Vec<Option<usize>>,
    label_log: f32,
    increment: usize,
}

/// A cascade prefix reduced for the microscopic task: who adopts next.
#[derive(Debug, Clone)]
pub struct TopoNextSample {
    nodes: Vec<usize>,
    parents: Vec<Option<usize>>,
    /// `mask[row]` is true for every already-infected vocabulary row (+UNK).
    mask: Vec<bool>,
    /// Vocabulary row of the true next adopter.
    target_row: usize,
}

/// The Topo-LSTM baseline.
#[derive(Debug, Clone)]
pub struct TopoLstm {
    store: ParamStore,
    vocab: Vocab,
    embedding: Embedding,
    cell: LstmCell,
    mlp: Mlp,
    hidden: usize,
    /// Cap on the nodes processed per cascade.
    max_nodes: usize,
    /// Masked softmax head over the vocabulary (next-user mode only; the
    /// size-regression parameter layout is unchanged when absent).
    next_head: Option<NextUserHead>,
}

impl TopoLstm {
    /// Embedding width.
    pub const EMBED_DIM: usize = 50;

    /// Builds the model with the vocabulary of the training cascades.
    pub fn new(train: &[Cascade], window: f64, hidden: usize, seed: u64) -> Self {
        let vocab = Vocab::build(
            train.iter().flat_map(|c| c.observe(window).users().into_iter()),
            0,
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let embedding = Embedding::new(
            &mut store,
            "topo.embed",
            vocab.table_size(),
            Self::EMBED_DIM,
            &mut rng,
        );
        let cell = LstmCell::new(&mut store, "topo.cell", Self::EMBED_DIM, hidden, &mut rng);
        let mlp = Mlp::new(
            &mut store,
            "topo.mlp",
            &[hidden, 32, 16, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            store,
            vocab,
            embedding,
            cell,
            mlp,
            hidden,
            max_nodes: 40,
            next_head: None,
        }
    }

    /// Builds the next-user variant: the same DAG-LSTM encoder plus a
    /// masked softmax head sized to the training vocabulary.
    pub fn new_next_user(train: &[Cascade], window: f64, hidden: usize, seed: u64) -> Self {
        let mut model = Self::new(train, window, hidden, seed);
        // A separate stream so the encoder init matches the size variant.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        model.next_head = Some(NextUserHead::new(
            &mut model.store,
            "topo.next",
            hidden,
            model.vocab.table_size(),
            &mut rng,
        ));
        model
    }

    /// Extracts the topological representation of a cascade.
    pub fn preprocess(&self, cascade: &Cascade, window: f64) -> TopoSample {
        let o = cascade.observe(window);
        let users = o.users();
        let n = o.num_nodes().min(self.max_nodes);
        let nodes = users[..n].iter().map(|&u| self.vocab.lookup(u)).collect();
        let parents = o.events()[..n]
            .iter()
            .map(|e| e.parent.filter(|&p| p < n))
            .collect();
        let increment = cascade.increment_size(window);
        TopoSample {
            nodes,
            parents,
            label_log: metrics::log_label(increment),
            increment,
        }
    }

    /// DAG-LSTM over the adoption order, mean-pooled to a `1 x hidden`
    /// cascade state shared by the size head and the next-user head.
    fn representation(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        nodes: &[usize],
        parents: &[Option<usize>],
    ) -> Var {
        let emb = self.embedding.forward(tape, store, nodes.to_vec());
        let mut states: Vec<(Var, Var)> = Vec::with_capacity(nodes.len());
        let mut hs: Vec<Var> = Vec::with_capacity(nodes.len());
        for (i, parent) in parents.iter().enumerate() {
            let x = tape.slice_rows(emb, i, 1);
            let incoming = match parent {
                Some(p) => states[*p],
                None => {
                    let h0 = tape.constant(Matrix::zeros(1, self.hidden));
                    let c0 = tape.constant(Matrix::zeros(1, self.hidden));
                    (h0, c0)
                }
            };
            let state = self.cell.step(tape, store, x, incoming);
            hs.push(state.0);
            states.push(state);
        }
        let stacked = tape.concat_rows(&hs);
        tape.mean_rows(stacked)
    }

    /// Forward: DAG-LSTM over the adoption order, mean-pooled node states,
    /// MLP head.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &TopoSample) -> Var {
        let pooled = self.representation(tape, store, &sample.nodes, &sample.parents);
        self.mlp.forward(tape, store, pooled)
    }

    /// Trains the model end-to-end.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples: Vec<TopoSample> =
            train.iter().map(|c| self.preprocess(c, window)).collect();
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<TopoSample> =
            val.iter().map(|c| self.preprocess(c, window)).collect();
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &TopoSample| {
            model.forward(tape, store, s)
        };
        trainer::train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    fn head(&self) -> &NextUserHead {
        self.next_head
            .as_ref()
            // lint: allow(no-panic) — internal invariant: every caller is a next-user entry point and the head always exists on models built by new_next_user
            .expect("next-user API requires a TopoLstm built by new_next_user")
    }

    /// Builds the next-user training example for a cascade prefix, or
    /// `None` when nothing happens after the window, the next adopter is
    /// out of vocabulary, or the target row is already infected.
    pub fn next_sample(&self, cascade: &Cascade, window: f64) -> Option<TopoNextSample> {
        let observed = cascade.observed_size(window);
        let target = cascade.events.get(observed)?;
        let target_row = self.vocab.lookup(target.user);
        let o = cascade.observe(window);
        let users = o.users();
        let mut mask = vec![false; self.head().table_size()];
        mask[0] = true;
        for &u in &users {
            mask[self.vocab.lookup(u)] = true;
        }
        if target_row == 0 || mask[target_row] {
            return None;
        }
        let n = o.num_nodes().min(self.max_nodes);
        let nodes = users[..n].iter().map(|&u| self.vocab.lookup(u)).collect();
        let parents = o.events()[..n]
            .iter()
            .map(|e| e.parent.filter(|&p| p < n))
            .collect();
        Some(TopoNextSample {
            nodes,
            parents,
            mask,
            target_row,
        })
    }

    /// Next-event cross-entropy for one sample (a `1x1` tape variable).
    pub fn next_loss(&self, tape: &mut Tape, store: &ParamStore, s: &TopoNextSample) -> Var {
        let rep = self.representation(tape, store, &s.nodes, &s.parents);
        self.head().loss(tape, store, rep, &s.mask, s.target_row)
    }

    /// Trains the next-user variant with next-event cross-entropy via the
    /// shared ranked trainer (ordered gradient merge, thread-invariant).
    pub fn fit_next_user(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let collect = |cs: &[Cascade]| -> Vec<TopoNextSample> {
            cs.iter().filter_map(|c| self.next_sample(c, window)).collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        assert!(
            !train_samples.is_empty(),
            "fit_next_user: no trainable next-user example in the training split"
        );
        let model = self.clone();
        let loss = move |tape: &mut Tape, store: &ParamStore, s: &TopoNextSample| {
            model.next_loss(tape, store, s)
        };
        trainer::train_loop_ranked(&mut self.store, &loss, &train_samples, &val_samples, opts)
    }

    /// 0-based rank of the true next adopter among uninfected vocabulary
    /// rows, or `None` when the prefix has no in-vocabulary target.
    pub fn next_user_rank(&self, cascade: &Cascade, window: f64) -> Option<usize> {
        let s = self.next_sample(cascade, window)?;
        let mut tape = Tape::new();
        let rep = self.representation(&mut tape, &self.store, &s.nodes, &s.parents);
        let probs = self
            .head()
            .predict_probs(&mut tape, &self.store, rep, &s.mask);
        let mut scores = Vec::with_capacity(probs.len());
        let mut target_idx = None;
        for (row, &p) in probs.iter().enumerate().skip(1) {
            if s.mask[row] {
                continue;
            }
            if row == s.target_row {
                target_idx = Some(scores.len());
            }
            scores.push(p);
        }
        Some(metrics::rank_of(&scores, target_idx?))
    }

    /// Ranks for every evaluable cascade, in input order.
    pub fn next_user_ranks(&self, cascades: &[Cascade], window: f64) -> Vec<usize> {
        cascades
            .iter()
            .filter_map(|c| self.next_user_rank(c, window))
            .collect()
    }
}

impl SizePredictor for TopoLstm {
    fn name(&self) -> String {
        "Topo-LSTM".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = self.preprocess(cascade, window);
        let forward = |tape: &mut Tape, store: &ParamStore, s: &TopoSample| {
            self.forward(tape, store, s)
        };
        trainer::predict_with(&self.store, &forward, &sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 33,
            max_size: 120,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn parents_are_resolved_within_cap() {
        let d = data();
        let model = TopoLstm::new(d.split(Split::Train), 3600.0, 8, 1);
        let s = model.preprocess(&d.cascades[0], 3600.0);
        assert_eq!(s.nodes.len(), s.parents.len());
        assert!(s.parents[0].is_none(), "root has no parent");
        for (i, p) in s.parents.iter().enumerate().skip(1) {
            if let Some(p) = p {
                assert!(*p < i, "parent must precede child");
            }
        }
    }

    #[test]
    fn topology_affects_prediction() {
        // Same users/times, different wiring → different prediction.
        let mk = |parents: [usize; 3]| {
            Cascade::new(
                7,
                0.0,
                vec![
                    cascn_cascades::Event { user: 1, parent: None, time: 0.0 },
                    cascn_cascades::Event { user: 2, parent: Some(parents[0]), time: 1.0 },
                    cascn_cascades::Event { user: 3, parent: Some(parents[1]), time: 2.0 },
                    cascn_cascades::Event { user: 4, parent: Some(parents[2]), time: 3.0 },
                ],
            )
        };
        let d = data();
        let model = TopoLstm::new(d.split(Split::Train), 3600.0, 8, 1);
        let star = model.predict_log(&mk([0, 0, 0]), 10.0);
        let chain = model.predict_log(&mk([0, 1, 2]), 10.0);
        assert!(star.is_finite() && chain.is_finite());
        assert_ne!(star, chain, "topology must matter to Topo-LSTM");
    }

    #[test]
    fn next_user_masks_infected_rows_and_fits_one_epoch() {
        let d = data();
        let mut model = TopoLstm::new_next_user(d.split(Split::Train), 3600.0, 8, 1);
        let mut checked = 0usize;
        for c in d.cascades.iter().take(30) {
            let Some(s) = model.next_sample(c, 3600.0) else {
                continue;
            };
            checked += 1;
            let mut tape = Tape::new();
            let rep = model.representation(&mut tape, &model.store, &s.nodes, &s.parents);
            let probs = model
                .head()
                .predict_probs(&mut tape, &model.store, rep, &s.mask);
            for (row, &m) in s.mask.iter().enumerate() {
                if m {
                    assert_eq!(probs[row], 0.0, "masked row {row} must have zero probability");
                }
            }
            let total: f32 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-4);
        }
        assert!(checked >= 5, "only {checked} prefixes had a target");
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit_next_user(
            d.split(Split::Train),
            d.split(Split::Validation),
            3600.0,
            &opts,
        );
        assert!(hist.records()[0].val_loss.is_finite());
        let ranks = model.next_user_ranks(d.split(Split::Test), 3600.0);
        assert!(!ranks.is_empty());
        assert!((0.0..=1.0).contains(&metrics::hit_at_k(&ranks, 10)));
    }

    #[test]
    fn one_epoch_fit_runs() {
        let d = data();
        let mut model = TopoLstm::new(d.split(Split::Train), 3600.0, 8, 1);
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit(
            d.split(Split::Train),
            d.split(Split::Validation),
            3600.0,
            &opts,
        );
        assert!(hist.records()[0].val_loss.is_finite());
    }
}
