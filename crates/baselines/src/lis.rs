//! LIS — latent influence and susceptibility (Wang et al., AAAI 2015), the
//! diffusion-model-based baseline.
//!
//! Every user `u` carries an influence vector `I_u` and a susceptibility
//! vector `S_u`; the probability that `v` activates `u` is
//! `σ(I_v · S_u)`. Vectors are learned by logistic regression over the
//! observed parent→child adoptions (positives) against sampled
//! non-adopters (negatives). Cascade growth is then predicted from the
//! summed activation pressure of the observed adopters, calibrated to the
//! log-increment scale on the training set — the model-based prediction
//! pipeline the paper compares against.

use std::collections::HashMap;

use cascn::SizePredictor;
use cascn_cascades::Cascade;
use cascn_nn::metrics;
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The LIS baseline model.
#[derive(Debug, Clone)]
pub struct Lis {
    dim: usize,
    users: HashMap<u64, usize>,
    influence: Vec<f32>,      // flattened num_users x dim
    susceptibility: Vec<f32>, // flattened num_users x dim
    /// Calibration weights over `[1, ln(1+pressure), ln(n)]`.
    calibration: [f32; 3],
    /// Largest training label; predictions are clamped to `[0, max]` so the
    /// linear calibration cannot extrapolate wildly on out-of-range cascades.
    max_label: f32,
    monte_carlo: usize,
    seed: u64,
}

/// Training hyper-parameters for LIS.
#[derive(Debug, Clone, Copy)]
pub struct LisConfig {
    /// Latent dimension of `I`/`S` (the original uses low-rank factors).
    pub dim: usize,
    /// SGD epochs over the adoption pairs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// L2 regularization (γ in the original).
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LisConfig {
    fn default() -> Self {
        Self {
            dim: 8,
            epochs: 5,
            lr: 0.05,
            negatives: 2,
            l2: 1e-4,
            seed: 17,
        }
    }
}

impl Lis {
    /// Fits influence/susceptibility vectors on the training cascades and a
    /// growth calibration on their labels.
    ///
    /// # Panics
    /// Panics if `train` is empty.
    pub fn fit(train: &[Cascade], window: f64, cfg: &LisConfig) -> Self {
        assert!(!train.is_empty(), "Lis: empty training set");
        let mut users = HashMap::new();
        for c in train {
            for u in c.observe(window).users() {
                let next = users.len();
                users.entry(u).or_insert(next);
            }
        }
        let n_users = users.len().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut influence = vec![0.0f32; n_users * cfg.dim];
        let mut susceptibility = vec![0.0f32; n_users * cfg.dim];
        for x in influence.iter_mut().chain(susceptibility.iter_mut()) {
            *x = rng.random_range(-0.1..0.1);
        }

        // Collect observed adoption pairs as user indices, plus the list of
        // all observed adopters: in the LIS likelihood, users who were
        // active but did not spread contribute non-activation terms, so
        // every adopter receives negative samples (not only parents).
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut adopters: Vec<usize> = Vec::new();
        for c in train {
            let o = c.observe(window);
            let us = o.users();
            for u in &us {
                adopters.push(users[u]);
            }
            for (i, e) in o.events().iter().enumerate().skip(1) {
                let Some(p) = e.parent else { continue };
                pairs.push((users[&us[p]], users[&us[i]]));
            }
        }

        let mut model = Self {
            dim: cfg.dim,
            users,
            influence,
            susceptibility,
            calibration: [0.0; 3],
            max_label: f32::INFINITY,
            monte_carlo: 64,
            seed: cfg.seed,
        };

        // Logistic SGD: positives from adoptions, uniform negatives from
        // every adopter (spreaders and non-spreaders alike).
        for _ in 0..cfg.epochs {
            for &(v, u) in &pairs {
                model.sgd_pair(v, u, 1.0, cfg);
            }
            for &v in &adopters {
                for _ in 0..cfg.negatives {
                    let w = rng.random_range(0..n_users);
                    model.sgd_pair(v, w, 0.0, cfg);
                }
            }
        }

        // Calibrate pressure → log-increment on the training set.
        let rows: Vec<[f32; 3]> = train
            .iter()
            .map(|c| model.calibration_features(c, window))
            .collect();
        let ys: Vec<f32> = train
            .iter()
            .map(|c| metrics::log_label(c.increment_size(window)))
            .collect();
        model.calibration = least_squares_3(&rows, &ys);
        model.max_label = ys.iter().copied().fold(0.0f32, f32::max);
        model
    }

    fn sgd_pair(&mut self, v: usize, u: usize, label: f32, cfg: &LisConfig) {
        let d = self.dim;
        let (iv, su) = (v * d, u * d);
        let dot: f32 = (0..d)
            .map(|k| self.influence[iv + k] * self.susceptibility[su + k])
            .sum();
        let p = 1.0 / (1.0 + (-dot).exp());
        let g = p - label; // d(logloss)/d(dot)
        for k in 0..d {
            let gi = g * self.susceptibility[su + k] + cfg.l2 * self.influence[iv + k];
            let gs = g * self.influence[iv + k] + cfg.l2 * self.susceptibility[su + k];
            self.influence[iv + k] -= cfg.lr * gi;
            self.susceptibility[su + k] -= cfg.lr * gs;
        }
    }

    /// Expected per-adopter activation pressure of an observed cascade: the
    /// Monte-Carlo mean of `σ(I_v · S_w)` over random target users `w`.
    fn pressure(&self, cascade: &Cascade, window: f64) -> f32 {
        let o = cascade.observe(window);
        let n_users = self.users.len().max(1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ cascade.id);
        let mut total = 0.0f32;
        for u in o.users() {
            let Some(&v) = self.users.get(&u) else {
                continue;
            };
            let iv = v * self.dim;
            let mut acc = 0.0f32;
            for _ in 0..self.monte_carlo {
                let w = rng.random_range(0..n_users);
                let sw = w * self.dim;
                let dot: f32 = (0..self.dim)
                    .map(|k| self.influence[iv + k] * self.susceptibility[sw + k])
                    .sum();
                acc += 1.0 / (1.0 + (-dot).exp());
            }
            total += acc / self.monte_carlo as f32;
        }
        total
    }

    fn calibration_features(&self, cascade: &Cascade, window: f64) -> [f32; 3] {
        let n = cascade.size_at(window).max(1);
        [
            1.0,
            (1.0 + self.pressure(cascade, window)).ln(),
            (n as f32).ln(),
        ]
    }

    /// Number of users with learned vectors.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }
}

impl SizePredictor for Lis {
    fn name(&self) -> String {
        "LIS".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let f = self.calibration_features(cascade, window);
        let raw: f32 = f
            .iter()
            .zip(&self.calibration)
            .map(|(&x, &b)| x * b)
            .sum();
        raw.clamp(0.0, self.max_label)
    }
}

/// Ordinary least squares for three-column design matrices.
fn least_squares_3(rows: &[[f32; 3]], ys: &[f32]) -> [f32; 3] {
    let mut xtx = Matrix::zeros(3, 3);
    let mut xty = Matrix::zeros(3, 1);
    for (r, &y) in rows.iter().zip(ys) {
        for i in 0..3 {
            xty[(i, 0)] += r[i] * y;
            for j in 0..3 {
                xtx[(i, j)] += r[i] * r[j];
            }
        }
    }
    for i in 0..3 {
        xtx[(i, i)] += 1e-4;
    }
    match xtx.solve(&xty) {
        Some(beta) => [beta[(0, 0)], beta[(1, 0)], beta[(2, 0)]],
        None => [0.0, 0.0, 0.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 400,
            seed: 23,
            max_size: 150,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 80)
    }

    #[test]
    fn fit_produces_finite_predictions() {
        let d = data();
        let model = Lis::fit(d.split(Split::Train), 3600.0, &LisConfig::default());
        assert!(model.num_users() > 50);
        for c in d.split(Split::Test).iter().take(10) {
            let p = model.predict_log(c, 3600.0);
            assert!(p.is_finite() && p >= 0.0);
        }
    }

    #[test]
    fn influential_parents_score_higher() {
        // Build a toy world: user 1 activates many, user 2 none. After
        // training, σ(I_1·S_w) should exceed σ(I_2·S_w) on average — i.e.
        // a cascade seeded by user 1 has more pressure.
        let mk = |id: u64, root: u64, kids: usize| {
            let mut events = vec![cascn_cascades::Event {
                user: root,
                parent: None,
                time: 0.0,
            }];
            for i in 0..kids {
                events.push(cascn_cascades::Event {
                    user: 100 + id * 50 + i as u64,
                    parent: Some(0),
                    time: 1.0 + i as f64,
                });
            }
            Cascade::new(id, id as f64, events)
        };
        let mut train = Vec::new();
        for i in 0..20 {
            train.push(mk(i, 1, 6)); // user 1 is highly influential
            train.push(mk(100 + i, 2, 0)); // user 2 never spreads
        }
        let model = Lis::fit(&train, 1e9, &LisConfig::default());
        let p_influential = model.pressure(&mk(1000, 1, 0), 1e9);
        let p_dud = model.pressure(&mk(1001, 2, 0), 1e9);
        assert!(
            p_influential > p_dud,
            "influential seed should exert more pressure: {p_influential} vs {p_dud}"
        );
    }

    #[test]
    fn calibration_tracks_scale() {
        let d = data();
        let train = d.split(Split::Train);
        let model = Lis::fit(train, 3600.0, &LisConfig::default());
        let msle = cascn::evaluate(&model, d.split(Split::Test), 3600.0);
        // The diffusion-model baseline is weak but must be in a sane range.
        assert!(msle.is_finite() && msle < 25.0, "LIS msle {msle}");
    }
}
