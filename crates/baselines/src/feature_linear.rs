//! Feature-linear: ridge regression over the hand-crafted features
//! (paper Section V-B), with the L2 coefficient selected on the validation
//! set from the paper's grid `{1, 0.5, 0.1, 0.05, …, 1e-8}`.

use cascn::SizePredictor;
use cascn_cascades::Cascade;
use cascn_nn::metrics;
use cascn_tensor::Matrix;

use crate::{feature_rows, Standardizer};

/// Ridge-regression baseline.
#[derive(Debug, Clone)]
pub struct FeatureLinear {
    standardizer: Standardizer,
    /// Weights over `[1, features...]` (intercept first).
    beta: Vec<f32>,
    /// The L2 coefficient chosen on validation.
    pub chosen_l2: f32,
}

impl FeatureLinear {
    /// The paper's L2 grid.
    pub fn l2_grid() -> Vec<f32> {
        let mut grid = vec![1.0, 0.5];
        let mut v = 0.1f32;
        while v >= 1e-8 {
            grid.push(v);
            grid.push(v * 0.5);
            v *= 0.1;
        }
        grid
    }

    /// Fits the model, choosing the L2 coefficient by validation MSLE.
    ///
    /// # Panics
    /// Panics if `train` is empty.
    pub fn fit(train: &[Cascade], val: &[Cascade], window: f64) -> Self {
        assert!(!train.is_empty(), "FeatureLinear: empty training set");
        let raw = feature_rows(train, window);
        let standardizer = Standardizer::fit(&raw);
        let x: Vec<Vec<f32>> = raw.iter().map(|r| standardizer.apply(r)).collect();
        let y: Vec<f32> = train
            .iter()
            .map(|c| metrics::log_label(c.increment_size(window)))
            .collect();

        let val_raw = feature_rows(val, window);
        let val_x: Vec<Vec<f32>> = val_raw.iter().map(|r| standardizer.apply(r)).collect();
        let val_y: Vec<usize> = val.iter().map(|c| c.increment_size(window)).collect();

        let mut best: Option<(f32, Vec<f32>, f32)> = None; // (msle, beta, l2)
        for l2 in Self::l2_grid() {
            let Some(beta) = ridge(&x, &y, l2) else {
                continue;
            };
            let score = if val_x.is_empty() {
                // Fall back to train MSLE when no validation data exists.
                let preds: Vec<f32> = x.iter().map(|r| predict_row(&beta, r)).collect();
                let incs: Vec<usize> = train.iter().map(|c| c.increment_size(window)).collect();
                metrics::msle(&preds, &incs)
            } else {
                let preds: Vec<f32> = val_x.iter().map(|r| predict_row(&beta, r)).collect();
                metrics::msle(&preds, &val_y)
            };
            if best.as_ref().is_none_or(|(b, _, _)| score < *b) {
                best = Some((score, beta, l2));
            }
        }
        // lint: allow(no-panic) — the L2 grid is a non-empty const and ridge with positive regularization is nonsingular
        let (_, beta, chosen_l2) = best.expect("at least one L2 value must fit");
        Self {
            standardizer,
            beta,
            chosen_l2,
        }
    }

    /// The learned weights (intercept first).
    pub fn weights(&self) -> &[f32] {
        &self.beta
    }
}

impl SizePredictor for FeatureLinear {
    fn name(&self) -> String {
        "Feature-linear".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let f = cascn_cascades::features::extract(&cascade.observe(window), window);
        predict_row(&self.beta, &self.standardizer.apply(&f))
    }
}

fn predict_row(beta: &[f32], row: &[f32]) -> f32 {
    beta[0] + row.iter().zip(&beta[1..]).map(|(&x, &b)| x * b).sum::<f32>()
}

/// Closed-form ridge: solves `(XᵀX + l2·I)β = Xᵀy` with an unpenalized
/// intercept column.
fn ridge(x: &[Vec<f32>], y: &[f32], l2: f32) -> Option<Vec<f32>> {
    let n = x.len();
    let d = x[0].len() + 1; // + intercept
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = Matrix::zeros(d, 1);
    for (row, &yi) in x.iter().zip(y) {
        let mut aug = Vec::with_capacity(d);
        aug.push(1.0f32);
        aug.extend_from_slice(row);
        for i in 0..d {
            xty[(i, 0)] += aug[i] * yi;
            for j in 0..d {
                xtx[(i, j)] += aug[i] * aug[j];
            }
        }
    }
    let scale = n as f32;
    for i in 1..d {
        xtx[(i, i)] += l2 * scale;
    }
    // Tiny jitter on the intercept to keep the system well-posed.
    xtx[(0, 0)] += 1e-6;
    let beta = xtx.solve(&xty)?;
    Some(beta.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    #[test]
    fn l2_grid_spans_paper_range() {
        let g = FeatureLinear::l2_grid();
        assert!(g.contains(&1.0));
        assert!(g.iter().any(|&v| v <= 1e-8));
        assert!(g.len() > 10);
    }

    #[test]
    fn fit_beats_constant_prediction() {
        let window = 3600.0;
        let data = WeiboGenerator::new(WeiboConfig {
            num_cascades: 900,
            seed: 77,
            max_size: 300,
        })
        .generate()
        .filter_observed_size(window, 5, 100);
        let model = FeatureLinear::fit(
            data.split(Split::Train),
            data.split(Split::Validation),
            window,
        );
        let test = data.split(Split::Test);
        let model_msle = cascn::evaluate(&model, test, window);

        // Constant predictor at the train-mean log label.
        let mean_label: f32 = data
            .split(Split::Train)
            .iter()
            .map(|c| metrics::log_label(c.increment_size(window)))
            .sum::<f32>()
            / data.split(Split::Train).len() as f32;
        let const_preds: Vec<f32> = vec![mean_label; test.len()];
        let incs: Vec<usize> = test.iter().map(|c| c.increment_size(window)).collect();
        let const_msle = metrics::msle(&const_preds, &incs);
        assert!(
            model_msle < const_msle,
            "ridge {model_msle} should beat constant {const_msle}"
        );
    }

    #[test]
    fn weights_include_intercept() {
        let window = 3600.0;
        let data = WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 5,
            max_size: 100,
        })
        .generate()
        .filter_observed_size(window, 2, 60);
        let model = FeatureLinear::fit(&data.cascades, &[], window);
        assert_eq!(
            model.weights().len(),
            cascn_cascades::features::num_features() + 1
        );
    }
}
