//! The seven Table III baselines, reimplemented from scratch.
//!
//! | Model | Category (paper §II) | Module |
//! |-------|----------------------|--------|
//! | Feature-linear | feature-based, L2 ridge | [`FeatureLinear`] |
//! | Feature-deep | feature-based, MLP | [`FeatureDeep`] |
//! | LIS | diffusion-model-based | [`Lis`] |
//! | Node2Vec | embedding + MLP | [`Node2VecModel`] |
//! | DeepCas | deep learning (walk + bi-GRU + attention) | [`DeepCas`] |
//! | DeepHawkes | deep generative (paths + GRU + decay) | [`DeepHawkes`] |
//! | Topo-LSTM | deep learning (DAG-LSTM) | [`TopoLstm`] |
//!
//! Every model implements [`cascn::SizePredictor`], trains with the shared
//! Algorithm-2 loop, and predicts the log-increment `ln(1 + ΔS)` so the
//! experiment harness can evaluate all of them identically.

mod deepcas;
mod deephawkes;
mod feature_deep;
mod feature_linear;
mod lis;
mod node2vec;
mod topolstm;

pub use deepcas::DeepCas;
pub use deephawkes::DeepHawkes;
pub use feature_deep::FeatureDeep;
pub use feature_linear::FeatureLinear;
pub use lis::{Lis, LisConfig};
pub use node2vec::{Node2VecModel, Node2VecModelConfig};
pub use topolstm::{TopoLstm, TopoNextSample};

use cascn_cascades::Cascade;

/// Standardization statistics for feature vectors (fit on train, applied
/// everywhere).
#[derive(Debug, Clone)]
pub(crate) struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits per-dimension mean/std over a feature matrix (rows = examples).
    pub(crate) fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "Standardizer: no rows");
        let d = rows[0].len();
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; d];
        for r in rows {
            for (m, &x) in mean.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; d];
        for r in rows {
            for ((s, &x), &m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        Self { mean, std }
    }

    /// Applies the transform.
    pub(crate) fn apply(&self, row: &[f32]) -> Vec<f32> {
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }
}

/// Extracts standardizable features for a batch of cascades.
pub(crate) fn feature_rows(cascades: &[Cascade], window: f64) -> Vec<Vec<f32>> {
    cascades
        .iter()
        .map(|c| cascn_cascades::features::extract(&c.observe(window), window))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_means_unit_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let s = Standardizer::fit(&rows);
        let transformed: Vec<Vec<f32>> = rows.iter().map(|r| s.apply(r)).collect();
        for d in 0..2 {
            let mean: f32 = transformed.iter().map(|r| r[d]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6);
            let var: f32 = transformed.iter().map(|r| r[d] * r[d]).sum::<f32>() / 3.0;
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let rows = vec![vec![2.0], vec![2.0]];
        let s = Standardizer::fit(&rows);
        let t = s.apply(&[2.0]);
        assert!(t[0].is_finite());
        assert_eq!(t[0], 0.0);
    }
}
