//! Feature-deep: the paper's strong feature baseline — the same
//! hand-crafted features as Feature-linear, fed into an MLP.

use cascn::{trainer, SizePredictor, TrainOpts};
use cascn_autograd::{ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::train::History;
use cascn_nn::{metrics, Activation, Mlp};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{feature_rows, Standardizer};

/// MLP over hand-crafted features.
#[derive(Debug, Clone)]
pub struct FeatureDeep {
    store: ParamStore,
    mlp: Mlp,
    standardizer: Option<Standardizer>,
}

impl FeatureDeep {
    /// Builds an untrained model (hidden sizes 32 → 16, the paper's MLP).
    pub fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let d = cascn_cascades::features::num_features();
        let mlp = Mlp::new(
            &mut store,
            "fdeep",
            &[d, 32, 16, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            store,
            mlp,
            standardizer: None,
        }
    }

    /// Trains the MLP on log-transformed labels (the paper log-transforms
    /// labels so feature baselines optimize the same loss as CasCN).
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let raw = feature_rows(train, window);
        let standardizer = Standardizer::fit(&raw);
        let train_x: Vec<Vec<f32>> = raw.iter().map(|r| standardizer.apply(r)).collect();
        let train_y: Vec<f32> = train
            .iter()
            .map(|c| metrics::log_label(c.increment_size(window)))
            .collect();
        let val_x: Vec<Vec<f32>> = feature_rows(val, window)
            .iter()
            .map(|r| standardizer.apply(r))
            .collect();
        let val_y: Vec<usize> = val.iter().map(|c| c.increment_size(window)).collect();
        self.standardizer = Some(standardizer);

        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &Vec<f32>| {
            model.forward(tape, store, x)
        };
        trainer::train_loop(
            &mut self.store,
            &forward,
            &train_x,
            &train_y,
            &val_x,
            &val_y,
            opts,
        )
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, features: &[f32]) -> Var {
        let x = tape.constant(Matrix::row_vector(features));
        self.mlp.forward(tape, store, x)
    }
}

impl SizePredictor for FeatureDeep {
    fn name(&self) -> String {
        "Feature-deep".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let raw = cascn_cascades::features::extract(&cascade.observe(window), window);
        let x = match &self.standardizer {
            Some(s) => s.apply(&raw),
            None => raw,
        };
        let forward =
            |tape: &mut Tape, store: &ParamStore, x: &Vec<f32>| self.forward(tape, store, x);
        trainer::predict_with(&self.store, &forward, &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    #[test]
    fn trains_and_beats_untrained_self() {
        let window = 3600.0;
        let data = WeiboGenerator::new(WeiboConfig {
            num_cascades: 500,
            seed: 13,
            max_size: 200,
        })
        .generate()
        .filter_observed_size(window, 3, 80);
        let test = data.split(Split::Test);

        let untrained = FeatureDeep::new(1);
        // An untrained model has no standardizer; prediction still works.
        let untrained_msle = cascn::evaluate(&untrained, test, window);

        let mut model = FeatureDeep::new(1);
        let opts = TrainOpts {
            epochs: 12,
            patience: 12,
            ..TrainOpts::default()
        };
        let hist = model.fit(data.split(Split::Train), data.split(Split::Validation), window, &opts);
        assert!(!hist.records().is_empty());
        let trained_msle = cascn::evaluate(&model, test, window);
        assert!(
            trained_msle < untrained_msle,
            "training should help: {trained_msle} vs {untrained_msle}"
        );
    }
}
