//! Node2Vec baseline (Grover & Leskovec, KDD 2016): biased random walks +
//! skip-gram with negative sampling (SGNS), then an MLP over the mean node
//! embedding of each observed cascade — the paper's representative of pure
//! node-embedding methods.

use std::collections::HashMap;

use cascn::{trainer, SizePredictor, TrainOpts};
use cascn_autograd::{ParamStore, Tape};
use cascn_cascades::Cascade;
use cascn_graph::walks::{self, Node2VecConfig};
use cascn_nn::train::History;
use cascn_nn::{metrics, Activation, Mlp};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters of the Node2Vec baseline.
#[derive(Debug, Clone, Copy)]
pub struct Node2VecModelConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Walk biasing and sampling parameters.
    pub walks: Node2VecConfig,
    /// Skip-gram context window.
    pub window_size: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGNS epochs.
    pub sgns_epochs: usize,
    /// SGNS learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Node2VecModelConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            walks: Node2VecConfig {
                walks_per_node: 2,
                walk_length: 8,
                ..Node2VecConfig::default()
            },
            window_size: 2,
            negatives: 3,
            sgns_epochs: 2,
            lr: 0.025,
            seed: 29,
        }
    }
}

/// SGNS embeddings + MLP regressor.
#[derive(Debug, Clone)]
pub struct Node2VecModel {
    cfg: Node2VecModelConfig,
    users: HashMap<u64, usize>,
    /// Flattened `num_users x dim` input embeddings.
    embeddings: Vec<f32>,
    store: ParamStore,
    mlp: Mlp,
}

impl Node2VecModel {
    /// Learns SGNS embeddings over the training cascades' walks and prepares
    /// the regression head (call [`Node2VecModel::fit_head`] afterwards).
    ///
    /// # Panics
    /// Panics if `train` is empty.
    pub fn fit_embeddings(train: &[Cascade], window: f64, cfg: Node2VecModelConfig) -> Self {
        assert!(!train.is_empty(), "Node2Vec: empty training set");
        let mut users = HashMap::new();
        for c in train {
            for u in c.observe(window).users() {
                let next = users.len();
                users.entry(u).or_insert(next);
            }
        }
        let n_users = users.len().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut embeddings = vec![0.0f32; n_users * cfg.dim];
        let mut context = vec![0.0f32; n_users * cfg.dim];
        for x in embeddings.iter_mut() {
            *x = rng.random_range(-0.5..0.5f32) / cfg.dim as f32;
        }

        // Walk corpus: biased walks over each observed cascade graph.
        let mut corpus: Vec<Vec<usize>> = Vec::new();
        for c in train {
            let o = c.observe(window);
            let g = o.graph();
            let us = o.users();
            for walk in walks::sample_node2vec_walks(&g, cfg.walks, &mut rng) {
                corpus.push(walk.into_iter().map(|v| users[&us[v]]).collect());
            }
        }

        // SGNS over (center, context) pairs inside the window.
        for _ in 0..cfg.sgns_epochs {
            for walk in &corpus {
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window_size);
                    let hi = (i + cfg.window_size + 1).min(walk.len());
                    for &ctx in &walk[lo..hi] {
                        if ctx == center {
                            continue;
                        }
                        sgns_update(&mut embeddings, &mut context, cfg.dim, center, ctx, 1.0, cfg.lr);
                        for _ in 0..cfg.negatives {
                            let neg = rng.random_range(0..n_users);
                            sgns_update(
                                &mut embeddings,
                                &mut context,
                                cfg.dim,
                                center,
                                neg,
                                0.0,
                                cfg.lr,
                            );
                        }
                    }
                }
            }
        }

        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "n2v.mlp",
            &[cfg.dim, 32, 16, 1],
            Activation::Relu,
            &mut StdRng::seed_from_u64(cfg.seed ^ 0xABCD),
        );
        Self {
            cfg,
            users,
            embeddings,
            store,
            mlp,
        }
    }

    /// Trains the MLP head on the frozen embeddings.
    pub fn fit_head(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_x: Vec<Vec<f32>> = train.iter().map(|c| self.cascade_vector(c, window)).collect();
        let train_y: Vec<f32> = train
            .iter()
            .map(|c| metrics::log_label(c.increment_size(window)))
            .collect();
        let val_x: Vec<Vec<f32>> = val.iter().map(|c| self.cascade_vector(c, window)).collect();
        let val_y: Vec<usize> = val.iter().map(|c| c.increment_size(window)).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, x: &Vec<f32>| {
            let xv = tape.constant(Matrix::row_vector(x));
            model.mlp.forward(tape, store, xv)
        };
        trainer::train_loop(&mut self.store, &forward, &train_x, &train_y, &val_x, &val_y, opts)
    }

    /// Convenience: embeddings + head in one call.
    pub fn fit(
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        cfg: Node2VecModelConfig,
        opts: &TrainOpts,
    ) -> (Self, History) {
        let mut model = Self::fit_embeddings(train, window, cfg);
        let history = model.fit_head(train, val, window, opts);
        (model, history)
    }

    /// Mean embedding of the observed adopters (zeros for unknown users).
    pub fn cascade_vector(&self, cascade: &Cascade, window: f64) -> Vec<f32> {
        let o = cascade.observe(window);
        let mut acc = vec![0.0f32; self.cfg.dim];
        let us = o.users();
        for u in &us {
            if let Some(&idx) = self.users.get(u) {
                for (a, &e) in acc.iter_mut().zip(&self.embeddings[idx * self.cfg.dim..(idx + 1) * self.cfg.dim]) {
                    *a += e;
                }
            }
        }
        for a in &mut acc {
            *a /= us.len() as f32;
        }
        acc
    }

    /// Number of embedded users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }
}

impl SizePredictor for Node2VecModel {
    fn name(&self) -> String {
        "Node2Vec".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let x = self.cascade_vector(cascade, window);
        let forward = |tape: &mut Tape, store: &ParamStore, x: &Vec<f32>| {
            let xv = tape.constant(Matrix::row_vector(x));
            self.mlp.forward(tape, store, xv)
        };
        trainer::predict_with(&self.store, &forward, &x)
    }
}

/// One SGNS gradient step on the pair `(center, ctx)` with the given label.
fn sgns_update(
    emb: &mut [f32],
    ctx_emb: &mut [f32],
    dim: usize,
    center: usize,
    ctx: usize,
    label: f32,
    lr: f32,
) {
    let (ci, xi) = (center * dim, ctx * dim);
    let dot: f32 = (0..dim).map(|k| emb[ci + k] * ctx_emb[xi + k]).sum();
    let p = 1.0 / (1.0 + (-dot).exp());
    let g = (p - label) * lr;
    for k in 0..dim {
        let e = emb[ci + k];
        emb[ci + k] -= g * ctx_emb[xi + k];
        ctx_emb[xi + k] -= g * e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 250,
            seed: 14,
            max_size: 120,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn embeddings_are_learned_for_all_users() {
        let d = data();
        let m = Node2VecModel::fit_embeddings(
            d.split(Split::Train),
            3600.0,
            Node2VecModelConfig::default(),
        );
        assert!(m.num_users() > 50);
        assert!(m.embeddings.iter().any(|&x| x != 0.0));
        assert!(m.embeddings.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cascade_vector_is_mean_of_members() {
        let d = data();
        let m = Node2VecModel::fit_embeddings(
            d.split(Split::Train),
            3600.0,
            Node2VecModelConfig::default(),
        );
        let v = m.cascade_vector(&d.split(Split::Train)[0], 3600.0);
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn full_fit_predicts_finite() {
        let d = data();
        let opts = TrainOpts {
            epochs: 3,
            ..TrainOpts::default()
        };
        let (m, hist) = Node2VecModel::fit(
            d.split(Split::Train),
            d.split(Split::Validation),
            3600.0,
            Node2VecModelConfig::default(),
            &opts,
        );
        assert!(!hist.records().is_empty());
        let msle = cascn::evaluate(&m, d.split(Split::Test), 3600.0);
        assert!(msle.is_finite());
    }
}
