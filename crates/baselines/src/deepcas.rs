//! DeepCas (Li et al., WWW 2017): the first end-to-end deep predictor —
//! random-walk node sequences, learned user embeddings, a bi-directional
//! GRU, and attention over walks. Uses structure and node identity but no
//! event times (its Table III weakness).

use cascn::{trainer, SizePredictor, TrainOpts};
use cascn_autograd::{ParamId, ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_graph::walks::{sample_walks, WalkConfig};
use cascn_nn::train::History;
use cascn_nn::{init, metrics, Activation, Embedding, GruCell, Linear, Mlp, Vocab};
use cascn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A cascade reduced to walk sequences for DeepCas.
#[derive(Debug, Clone)]
pub struct DeepCasSample {
    walks: Vec<Vec<usize>>,
    label_log: f32,
    increment: usize,
}

/// The DeepCas baseline.
#[derive(Debug, Clone)]
pub struct DeepCas {
    store: ParamStore,
    vocab: Vocab,
    embedding: Embedding,
    gru_fwd: GruCell,
    gru_bwd: GruCell,
    att_proj: Linear,
    att_v: ParamId,
    mlp: Mlp,
    walk_cfg: WalkConfig,
    hidden: usize,
    seed: u64,
}

impl DeepCas {
    /// Embedding width (paper setup: 50).
    pub const EMBED_DIM: usize = 50;

    /// Builds the model; the vocabulary comes from the training cascades.
    pub fn new(train: &[Cascade], window: f64, hidden: usize, seed: u64) -> Self {
        let vocab = Vocab::build(
            train.iter().flat_map(|c| c.observe(window).users().into_iter()),
            0,
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let embedding = Embedding::new(
            &mut store,
            "deepcas.embed",
            vocab.table_size(),
            Self::EMBED_DIM,
            &mut rng,
        );
        let gru_fwd = GruCell::new(&mut store, "deepcas.gru_fwd", Self::EMBED_DIM, hidden, &mut rng);
        let gru_bwd = GruCell::new(&mut store, "deepcas.gru_bwd", Self::EMBED_DIM, hidden, &mut rng);
        let att_proj = Linear::new(&mut store, "deepcas.att_proj", 2 * hidden, hidden, &mut rng);
        let att_v = store.register("deepcas.att_v", init::xavier_uniform(hidden, 1, &mut rng));
        let mlp = Mlp::new(
            &mut store,
            "deepcas.mlp",
            &[2 * hidden, 32, 16, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            store,
            vocab,
            embedding,
            gru_fwd,
            gru_bwd,
            att_proj,
            att_v,
            mlp,
            walk_cfg: WalkConfig {
                num_walks: 12,
                walk_length: 8,
            },
            hidden,
            seed,
        }
    }

    /// Deterministically samples the walk representation of a cascade.
    pub fn preprocess(&self, cascade: &Cascade, window: f64) -> DeepCasSample {
        let o = cascade.observe(window);
        let g = o.graph();
        let users = o.users();
        let mut rng = StdRng::seed_from_u64(self.seed ^ cascade.id.wrapping_mul(0x51f2_33da));
        let walks = sample_walks(&g, self.walk_cfg, &mut rng)
            .into_iter()
            .map(|w| w.into_iter().map(|v| self.vocab.lookup(users[v])).collect())
            .collect();
        let increment = cascade.increment_size(window);
        DeepCasSample {
            walks,
            label_log: metrics::log_label(increment),
            increment,
        }
    }

    /// Forward pass: bi-GRU per walk → attention-weighted sum over walks →
    /// MLP.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &DeepCasSample) -> Var {
        let mut walk_reprs = Vec::with_capacity(sample.walks.len());
        for walk in &sample.walks {
            let emb = self.embedding.forward(tape, store, walk.clone());
            let fwd_inputs: Vec<Var> = (0..walk.len()).map(|i| tape.slice_rows(emb, i, 1)).collect();
            let bwd_inputs: Vec<Var> = fwd_inputs.iter().rev().copied().collect();
            let hf = self.gru_fwd.run(tape, store, &fwd_inputs, 1);
            let hb = self.gru_bwd.run(tape, store, &bwd_inputs, 1);
            // Walks are non-empty by construction (they start at a node);
            // skip defensively rather than panic if that ever changes.
            let (Some(&last_f), Some(&last_b)) = (hf.last(), hb.last()) else {
                continue;
            };
            walk_reprs.push(tape.concat_cols(last_f, last_b));
        }
        let stacked = tape.concat_rows(&walk_reprs); // m x 2h
        // Additive attention over walks.
        let proj = self.att_proj.forward(tape, store, stacked);
        let proj_act = tape.tanh(proj);
        let v = tape.param(store, self.att_v);
        let scores = tape.matmul(proj_act, v); // m x 1
        let weights = tape.softmax_col(scores);
        // Weighted sum: tile weights across columns, hadamard, sum rows.
        let ones = tape.constant(Matrix::full(1, 2 * self.hidden, 1.0));
        let tiled = tape.matmul(weights, ones);
        let weighted = tape.hadamard(tiled, stacked);
        let pooled = tape.sum_rows(weighted); // 1 x 2h
        self.mlp.forward(tape, store, pooled)
    }

    /// Trains the model end-to-end.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples: Vec<DeepCasSample> =
            train.iter().map(|c| self.preprocess(c, window)).collect();
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<DeepCasSample> =
            val.iter().map(|c| self.preprocess(c, window)).collect();
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &DeepCasSample| {
            model.forward(tape, store, s)
        };
        trainer::train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }
}

impl SizePredictor for DeepCas {
    fn name(&self) -> String {
        "DeepCas".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = self.preprocess(cascade, window);
        let forward = |tape: &mut Tape, store: &ParamStore, s: &DeepCasSample| {
            self.forward(tape, store, s)
        };
        trainer::predict_with(&self.store, &forward, &sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 19,
            max_size: 120,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn attention_weights_sum_to_one_via_forward_finiteness() {
        let d = data();
        let model = DeepCas::new(d.split(Split::Train), 3600.0, 8, 1);
        let p = model.predict_log(&d.cascades[0], 3600.0);
        assert!(p.is_finite());
    }

    #[test]
    fn preprocessing_is_deterministic() {
        let d = data();
        let model = DeepCas::new(d.split(Split::Train), 3600.0, 8, 1);
        let a = model.preprocess(&d.cascades[0], 3600.0);
        let b = model.preprocess(&d.cascades[0], 3600.0);
        assert_eq!(a.walks, b.walks);
    }

    #[test]
    fn one_epoch_fit_runs() {
        let d = data();
        let mut model = DeepCas::new(d.split(Split::Train), 3600.0, 8, 1);
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit(
            d.split(Split::Train),
            d.split(Split::Validation),
            3600.0,
            &opts,
        );
        assert!(hist.records()[0].val_loss.is_finite());
    }
}
