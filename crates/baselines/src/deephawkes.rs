//! DeepHawkes (Cao et al., CIKM 2017): the deep generative baseline — each
//! observed adopter contributes its root-to-node diffusion path, encoded by
//! a GRU over user embeddings, weighted by a learned non-parametric time
//! decay of the adoption time, and sum-pooled. Captures user influence and
//! temporal decay but, unlike CasCN, no explicit graph structure — the gap
//! the paper's Table III highlights.

use cascn::{trainer, SizePredictor, TrainOpts};
use cascn_autograd::{ParamStore, Tape, Var};
use cascn_cascades::Cascade;
use cascn_nn::train::History;
use cascn_nn::{metrics, Activation, Embedding, GruCell, Mlp, TimeDecay, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A cascade reduced to diffusion paths with adoption times.
#[derive(Debug, Clone)]
pub struct DeepHawkesSample {
    /// Root-to-adopter paths as vocabulary indices.
    paths: Vec<Vec<usize>>,
    /// Adoption time of each path's endpoint.
    end_times: Vec<f64>,
    window: f64,
    label_log: f32,
    increment: usize,
}

/// The DeepHawkes baseline.
#[derive(Debug, Clone)]
pub struct DeepHawkes {
    store: ParamStore,
    vocab: Vocab,
    embedding: Embedding,
    gru: GruCell,
    decay: TimeDecay,
    mlp: Mlp,
    /// Cap on the number of paths (= adopters) per cascade.
    max_paths: usize,
}

impl DeepHawkes {
    /// Embedding width (the DeepHawkes setup: 50).
    pub const EMBED_DIM: usize = 50;

    /// Builds the model with the vocabulary of the training cascades.
    pub fn new(train: &[Cascade], window: f64, hidden: usize, seed: u64) -> Self {
        let vocab = Vocab::build(
            train.iter().flat_map(|c| c.observe(window).users().into_iter()),
            0,
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let embedding = Embedding::new(
            &mut store,
            "dh.embed",
            vocab.table_size(),
            Self::EMBED_DIM,
            &mut rng,
        );
        let gru = GruCell::new(&mut store, "dh.gru", Self::EMBED_DIM, hidden, &mut rng);
        let decay = TimeDecay::new(&mut store, "dh.decay", 6);
        let mlp = Mlp::new(
            &mut store,
            "dh.mlp",
            &[hidden, 32, 16, 1],
            Activation::Relu,
            &mut rng,
        );
        Self {
            store,
            vocab,
            embedding,
            gru,
            decay,
            mlp,
            max_paths: 30,
        }
    }

    /// Extracts the diffusion-path representation of a cascade.
    pub fn preprocess(&self, cascade: &Cascade, window: f64) -> DeepHawkesSample {
        let o = cascade.observe(window);
        let users = o.users();
        let times: Vec<f64> = o.times().collect();
        let mut paths = Vec::new();
        let mut end_times = Vec::new();
        for (i, path) in o.diffusion_paths().into_iter().enumerate().take(self.max_paths) {
            end_times.push(times[i]);
            paths.push(path.into_iter().map(|v| self.vocab.lookup(users[v])).collect());
        }
        let increment = cascade.increment_size(window);
        DeepHawkesSample {
            paths,
            end_times,
            window,
            label_log: metrics::log_label(increment),
            increment,
        }
    }

    /// Forward: GRU per path → decay-weighted sum over paths → MLP.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, sample: &DeepHawkesSample) -> Var {
        let mut acc: Option<Var> = None;
        for (path, &end_time) in sample.paths.iter().zip(&sample.end_times) {
            let emb = self.embedding.forward(tape, store, path.clone());
            let inputs: Vec<Var> = (0..path.len()).map(|i| tape.slice_rows(emb, i, 1)).collect();
            let hs = self.gru.run(tape, store, &inputs, 1);
            let Some(&last) = hs.last() else { continue };
            let weighted = self.decay.apply(tape, store, last, end_time, sample.window);
            acc = Some(match acc {
                Some(a) => tape.add(a, weighted),
                None => weighted,
            });
        }
        // lint: allow(no-panic) — preprocess always emits at least the root path, so the fold is non-empty
        let pooled = acc.expect("at least one path");
        self.mlp.forward(tape, store, pooled)
    }

    /// Trains the model end-to-end.
    pub fn fit(
        &mut self,
        train: &[Cascade],
        val: &[Cascade],
        window: f64,
        opts: &TrainOpts,
    ) -> History {
        let train_samples: Vec<DeepHawkesSample> =
            train.iter().map(|c| self.preprocess(c, window)).collect();
        let train_labels: Vec<f32> = train_samples.iter().map(|s| s.label_log).collect();
        let val_samples: Vec<DeepHawkesSample> =
            val.iter().map(|c| self.preprocess(c, window)).collect();
        let val_increments: Vec<usize> = val_samples.iter().map(|s| s.increment).collect();
        let model = self.clone();
        let forward = move |tape: &mut Tape, store: &ParamStore, s: &DeepHawkesSample| {
            model.forward(tape, store, s)
        };
        trainer::train_loop(
            &mut self.store,
            &forward,
            &train_samples,
            &train_labels,
            &val_samples,
            &val_increments,
            opts,
        )
    }

    /// The learned decay multipliers (diagnostic).
    pub fn decay_values(&self) -> Vec<f32> {
        self.decay.values(&self.store)
    }
}

impl SizePredictor for DeepHawkes {
    fn name(&self) -> String {
        "DeepHawkes".to_string()
    }

    fn predict_log(&self, cascade: &Cascade, window: f64) -> f32 {
        let sample = self.preprocess(cascade, window);
        let forward = |tape: &mut Tape, store: &ParamStore, s: &DeepHawkesSample| {
            self.forward(tape, store, s)
        };
        trainer::predict_with(&self.store, &forward, &sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascn_cascades::synth::{WeiboConfig, WeiboGenerator};
    use cascn_cascades::Split;

    fn data() -> cascn_cascades::Dataset {
        WeiboGenerator::new(WeiboConfig {
            num_cascades: 200,
            seed: 25,
            max_size: 120,
        })
        .generate()
        .filter_observed_size(3600.0, 3, 60)
    }

    #[test]
    fn paths_cover_all_observed_nodes_up_to_cap() {
        let d = data();
        let model = DeepHawkes::new(d.split(Split::Train), 3600.0, 8, 1);
        let c = &d.cascades[0];
        let s = model.preprocess(c, 3600.0);
        let n = c.size_at(3600.0);
        assert_eq!(s.paths.len(), n.min(30));
        assert_eq!(s.paths.len(), s.end_times.len());
    }

    #[test]
    fn forward_is_finite_and_time_sensitive() {
        let d = data();
        let model = DeepHawkes::new(d.split(Split::Train), 3600.0, 8, 1);
        let p = model.predict_log(&d.cascades[0], 3600.0);
        assert!(p.is_finite());
    }

    #[test]
    fn one_epoch_fit_runs() {
        let d = data();
        let mut model = DeepHawkes::new(d.split(Split::Train), 3600.0, 8, 1);
        let opts = TrainOpts {
            epochs: 1,
            ..TrainOpts::default()
        };
        let hist = model.fit(
            d.split(Split::Train),
            d.split(Split::Validation),
            3600.0,
            &opts,
        );
        assert!(hist.records()[0].val_loss.is_finite());
    }
}
