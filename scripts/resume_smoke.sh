#!/usr/bin/env bash
# Kill-and-resume smoke test: starts a checkpointing training run, SIGKILLs
# it mid-flight, resumes from the surviving checkpoint, and asserts the
# resumed run's final parameters are byte-identical to an uninterrupted
# control run.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/cascn
if [ ! -x "$BIN" ]; then
    cargo build --release -q
fi
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BIN" generate --dataset weibo --n 400 --seed 9 --out "$TMP/d.cascades" > /dev/null

COMMON=(--data "$TMP/d.cascades" --window 3600 --hidden 4 --max-nodes 10
        --max-steps 5 --min-size 3 --patience 6 --epochs 6)

# Control: uninterrupted run.
"$BIN" train "${COMMON[@]}" --out "$TMP/control.params" > /dev/null

# Interrupted run: checkpoint after every epoch, kill -9 as soon as the
# first checkpoint lands (i.e. mid-epoch of a later epoch).
"$BIN" train "${COMMON[@]}" --checkpoint "$TMP/run.ckpt" > /dev/null &
PID=$!
for _ in $(seq 1 600); do
    [ -s "$TMP/run.ckpt" ] && break
    sleep 0.1
done
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true
if [ ! -s "$TMP/run.ckpt" ]; then
    echo "resume smoke FAILED: no checkpoint was written before the kill" >&2
    exit 1
fi

# Resume to completion; the final model must match the control exactly.
"$BIN" train "${COMMON[@]}" --resume "$TMP/run.ckpt" --out "$TMP/resumed.params" > /dev/null
if cmp -s "$TMP/control.params" "$TMP/resumed.params"; then
    echo "resume smoke OK: resumed parameters are identical to the control run"
else
    echo "resume smoke FAILED: resumed parameters differ from the control run" >&2
    exit 1
fi
