#!/usr/bin/env bash
# Kill-and-resume smoke test: starts a checkpointing training run, SIGKILLs
# it mid-flight, resumes from the surviving checkpoint, and asserts the
# resumed run's final parameters are byte-identical to an uninterrupted
# control run. The interrupted/resumed cycle runs under --threads 4, so the
# script also proves the parallel engine's determinism contract end to end:
# serial control == threaded control == killed-and-resumed threaded run.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/cascn
if [ ! -x "$BIN" ]; then
    cargo build --release -q
fi
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BIN" generate --dataset weibo --n 400 --seed 9 --out "$TMP/d.cascades" > /dev/null

COMMON=(--data "$TMP/d.cascades" --window 3600 --hidden 4 --max-nodes 10
        --max-steps 5 --min-size 3 --patience 6 --epochs 6)

# Control: uninterrupted serial run (--threads 1 is the exact legacy path).
"$BIN" train "${COMMON[@]}" --threads 1 --out "$TMP/control.params" > /dev/null

# Thread-parity: the same run on 4 worker threads must produce a
# byte-identical model.
"$BIN" train "${COMMON[@]}" --threads 4 --out "$TMP/threaded.params" > /dev/null
if cmp -s "$TMP/control.params" "$TMP/threaded.params"; then
    echo "thread parity OK: --threads 4 parameters are identical to --threads 1"
else
    echo "thread parity FAILED: --threads 4 parameters differ from --threads 1" >&2
    exit 1
fi

# Interrupted run (threaded): checkpoint after every epoch, kill -9 as soon
# as the first checkpoint lands (i.e. mid-epoch of a later epoch).
"$BIN" train "${COMMON[@]}" --threads 4 --checkpoint "$TMP/run.ckpt" > /dev/null &
PID=$!
for _ in $(seq 1 600); do
    [ -s "$TMP/run.ckpt" ] && break
    sleep 0.1
done
kill -9 "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true
if [ ! -s "$TMP/run.ckpt" ]; then
    echo "resume smoke FAILED: no checkpoint was written before the kill" >&2
    exit 1
fi

# Resume to completion under --threads 4; the final model must match the
# serial control exactly.
"$BIN" train "${COMMON[@]}" --threads 4 --resume "$TMP/run.ckpt" --out "$TMP/resumed.params" > /dev/null
if cmp -s "$TMP/control.params" "$TMP/resumed.params"; then
    echo "resume smoke OK: resumed threaded parameters are identical to the control run"
else
    echo "resume smoke FAILED: resumed parameters differ from the control run" >&2
    exit 1
fi
