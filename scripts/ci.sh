#!/usr/bin/env bash
# CI gate: release build, clippy with warnings-as-errors, the full test
# suite, and the kill-and-resume smoke test.
set -euo pipefail

cd "$(dirname "$0")/.."
cargo build --release
cargo clippy --all-targets -- -D warnings
cargo test -q
scripts/resume_smoke.sh
