#!/usr/bin/env bash
# CI gate: release build, the cascn-lint contract ratchet (all nine rules:
# the five token rules plus the per-crate concurrency passes — lock-order,
# guard-across-blocking, wait-loop, atomic-ordering), clippy with
# warnings-as-errors, the full test suite, the thread-parity suite in
# release (optimized float codegen is the configuration that ships), bench
# compilation, the perf ratchet (BENCH_train.json vs bench-baseline.json:
# sparse-kernel speedup, kernel-accuracy and next-user Hit@10 gates plus
# banded wall-clock), the kill-and-resume smoke test, the serving smoke
# test, the next-user train→serve smoke test, and the fleet smoke test
# (3-replica tier behind cascn-router surviving a kill -9 under load with
# zero non-503 errors and a warm restart, plus the /predict_next leg gated
# by serve_check against serve-baseline.json).
set -euo pipefail

cd "$(dirname "$0")/.."
cargo build --release
cargo run --release -p cascn-lint -- --check
cargo clippy --all-targets -- -D warnings
cargo test -q
cargo test -q --release -p cascn --test thread_parity
cargo bench --no-run -p cascn-bench
cargo run --release -q -p cascn-bench --bin record -- --check
scripts/resume_smoke.sh
scripts/serve_smoke.sh
scripts/next_user_smoke.sh
scripts/fleet_smoke.sh
