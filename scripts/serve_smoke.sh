#!/usr/bin/env bash
# Serving smoke test: trains a tiny checkpoint, starts cascn-serve on an
# ephemeral port, drives it with the loadgen client (a payload pool small
# enough that the run revisits cascades and must hit the spectral cache),
# then asserts from GET /metrics that the cache hit counter is nonzero and
# latency quantiles are reported, and that the server shuts down cleanly
# on POST /shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."
CASCN=target/release/cascn
SERVE=target/release/cascn-serve
LOADGEN=target/release/loadgen
if [ ! -x "$CASCN" ] || [ ! -x "$SERVE" ] || [ ! -x "$LOADGEN" ]; then
    cargo build --release -q
fi
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2> /dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# 1. Train a tiny checkpoint (architecture must match the serve flags).
"$CASCN" generate --dataset weibo --n 200 --seed 9 --out "$TMP/d.cascades" > /dev/null
"$CASCN" train --data "$TMP/d.cascades" --window 3600 --hidden 4 --max-nodes 10 \
    --max-steps 5 --min-size 3 --epochs 2 --checkpoint "$TMP/model.ckpt" > /dev/null
if [ ! -s "$TMP/model.ckpt" ]; then
    echo "serve smoke FAILED: training wrote no checkpoint" >&2
    exit 1
fi

# 2. Start the server on an ephemeral port; parse the port from its
#    "listening on ADDR" line.
"$SERVE" --model "$TMP/model.ckpt" --addr 127.0.0.1:0 --window 3600 \
    --hidden 4 --max-nodes 10 --max-steps 5 > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/server.log" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2> /dev/null; then
        echo "serve smoke FAILED: server exited before listening" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve smoke FAILED: server never reported its address" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

# 3. Drive it: 200 requests over a 20-cascade pool (each payload repeats
#    ~20x), scrape metrics, then ask for shutdown.
"$LOADGEN" --addr "$ADDR" --requests 200 --concurrency 4 --n-cascades 20 \
    --window 3600 --seed 7 --print-metrics --shutdown > "$TMP/loadgen.log"
cat "$TMP/loadgen.log"

# 4. The server must exit cleanly after the shutdown route.
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "serve smoke FAILED: server exited with code $EXIT_CODE" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

# 5. Assert the scraped metrics prove the contract: cache hits > 0 and
#    latency quantiles present.
HITS=$(sed -n 's/^cascn_spectral_cache_hits_total //p' "$TMP/loadgen.log" | head -n 1)
if [ -z "$HITS" ] || [ "$HITS" -eq 0 ]; then
    echo "serve smoke FAILED: expected nonzero spectral cache hits, got '${HITS:-missing}'" >&2
    exit 1
fi
for Q in 0.5 0.99; do
    if ! grep -q "cascn_predict_latency_us{quantile=\"$Q\"}" "$TMP/loadgen.log"; then
        echo "serve smoke FAILED: missing latency quantile $Q in metrics" >&2
        exit 1
    fi
done
echo "serve smoke OK: $HITS spectral cache hits, clean shutdown, latency quantiles reported"
