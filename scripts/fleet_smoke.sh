#!/usr/bin/env bash
# Fleet smoke test: the self-healing serving tier end to end.
#
# Trains a tiny checkpoint, starts `cascn-router` supervising a 3-replica
# `cascn-serve` tier on ephemeral ports, warms the spectral caches through
# the router, snapshots them, then kill -9's a replica *while loadgen is
# mid-run* and asserts:
#
#   1. zero non-503 client errors across the failover window (loadgen
#      exits nonzero on any outright failure),
#   2. the supervisor restarts the victim (restarts counter >= 1, new pid,
#      tier back to 3 live replicas),
#   3. the restarted replica warm-starts from its persisted snapshot and
#      serves warm cache hits on the re-offered payload pool,
#   4. the router shuts the whole tier down cleanly on POST /shutdown.
#
# Also emits BENCH_serve.json at the repo root — router p50/p99, the
# failover-window shed count, the victim's warm-start hit rate, a
# per-replica p50/p99 breakdown (loadgen --target-list driven directly
# against the tier), and the /predict_next latency of a next-user server
# — then gates it against serve-baseline.json via `serve_check --check`
# (the serving analogue of the record --check perf ratchet).
set -euo pipefail

cd "$(dirname "$0")/.."
CASCN=target/release/cascn
SERVE=target/release/cascn-serve
ROUTER=target/release/cascn-router
LOADGEN=target/release/loadgen
SERVE_CHECK=target/release/serve_check
if [ ! -x "$CASCN" ] || [ ! -x "$SERVE" ] || [ ! -x "$ROUTER" ] || [ ! -x "$LOADGEN" ] \
    || [ ! -x "$SERVE_CHECK" ]; then
    cargo build --release -q
fi
TMP=$(mktemp -d)
ROUTER_PID=""
NEXT_PID=""
cleanup() {
    [ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2> /dev/null || true
    [ -n "$NEXT_PID" ] && kill "$NEXT_PID" 2> /dev/null || true
    # The router's supervisor kills its replicas on exit; pkill is a
    # belt-and-braces sweep for replicas orphaned by a failed assertion.
    pkill -9 -f "cascn-serve --model $TMP/" 2> /dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "fleet smoke FAILED: $1" >&2
    [ -f "$TMP/router.log" ] && tail -n 40 "$TMP/router.log" >&2
    exit 1
}

# One HTTP request over bash's /dev/tcp; prints the raw response.
http() { # METHOD PATH ADDR
    local host=${3%:*} port=${3##*:}
    exec 3<> "/dev/tcp/$host/$port" || return 1
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: 0\r\n\r\n' \
        "$1" "$2" >&3
    cat <&3
    exec 3<&- 3>&-
}

# One POST with a body file; prints the raw response.
http_body() { # PATH ADDR BODYFILE
    local host=${2%:*} port=${2##*:} len
    len=$(wc -c < "$3")
    exec 3<> "/dev/tcp/$host/$port" || return 1
    {
        printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %s\r\n\r\n' \
            "$1" "$len"
        cat "$3"
    } >&3
    cat <&3
    exec 3<&- 3>&-
}

metric() { # NAME FILE — value of an exact-name metric line
    local esc
    # BRE-escape the metric name; braces and quotes are already literal.
    esc=$(printf '%s' "$1" | sed 's|[][\.*^$/]|\\&|g')
    sed -n "s/^$esc //p" "$2" | head -n 1
}

# 1. Train a tiny checkpoint (architecture must match the replica flags).
"$CASCN" generate --dataset weibo --n 200 --seed 9 --out "$TMP/d.cascades" > /dev/null
"$CASCN" train --data "$TMP/d.cascades" --window 3600 --hidden 4 --max-nodes 10 \
    --max-steps 5 --min-size 3 --epochs 2 --checkpoint "$TMP/model.ckpt" > /dev/null
[ -s "$TMP/model.ckpt" ] || fail "training wrote no checkpoint"

# 2. Start the router supervising 3 replicas, each with its own snapshot
#    file ({i} is substituted per replica).
"$ROUTER" --addr 127.0.0.1:0 --replicas 3 --replica-cmd "$SERVE" \
    --replica-arg --model --replica-arg "$TMP/model.ckpt" \
    --replica-arg --addr --replica-arg 127.0.0.1:0 \
    --replica-arg --window --replica-arg 3600 \
    --replica-arg --hidden --replica-arg 4 \
    --replica-arg --max-nodes --replica-arg 10 \
    --replica-arg --max-steps --replica-arg 5 \
    --replica-arg --snapshot --replica-arg "$TMP/spectral-{i}.snap" \
    --deadline-ms 5000 --max-attempts 4 --failure-threshold 2 \
    --probe-interval-ms 100 --restart-backoff-ms 100 --restart-backoff-cap-ms 500 \
    > "$TMP/router.log" 2>&1 &
ROUTER_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/router.log" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$ROUTER_PID" 2> /dev/null || fail "router exited before listening"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "router never reported its address"

# Wait for all three replicas to come up and publish their addresses.
for _ in $(seq 1 300); do
    UP=$(grep -c '^replica [0-9]* listening on ' "$TMP/router.log" || true)
    [ "$UP" -ge 3 ] && break
    sleep 0.1
done
[ "${UP:-0}" -ge 3 ] || fail "replicas never came up (saw ${UP:-0}/3)"

# 3. Warm phase: drive the tier through the router. The payload pool is
#    small so rendezvous routing builds each replica's spectral cache. A
#    quarter of the requests are /observe registrations, so the streaming
#    path is exercised through the router under concurrency.
"$LOADGEN" --addr "$ADDR" --requests 120 --concurrency 4 --n-cascades 20 \
    --window 3600 --seed 7 --observe-ratio 0.25 > "$TMP/warm.log" \
    || fail "warm-phase loadgen reported failures"
grep -q '^observe: ' "$TMP/warm.log" || fail "loadgen printed no observe latency line"

# 3b. Streaming parity through the router: observe → predict → observe →
#     (window-crossing) refresh → predict. A cascade predicted before it
#     existed as live state must serve the same prediction after being
#     streamed in via /observe, and again after an append that crosses to
#     a wider window. A predict that hits the observe-seeded basis reuses
#     the incrementally maintained operator, which is held to the 5e-4
#     parity gate rather than bit equality — so that is the bound here.
within_gate() { # A B — |A-B| < 5e-4
    awk -v a="$1" -v b="$2" 'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 5e-4) }'
}
{
    echo "cascade 777 0"
    echo "event 1 - 0"
    echo "event 2 0 5"
    echo "event 3 0 10"
    echo "event 4 1 20"
} > "$TMP/obs-full.txt"
PRED_COLD=$(http_body "/predict?window=3600" "$ADDR" "$TMP/obs-full.txt" | sed -n 's/^prediction 777 //p')
[ -n "$PRED_COLD" ] || fail "cold predict of the parity cascade returned nothing"
head -n 3 "$TMP/obs-full.txt" > "$TMP/obs-prefix.txt"
http_body "/observe?window=3600" "$ADDR" "$TMP/obs-prefix.txt" | grep -q '200 OK' \
    || fail "observe registration through the router failed"
{ head -n 1 "$TMP/obs-full.txt"; tail -n +4 "$TMP/obs-full.txt"; } > "$TMP/obs-suffix.txt"
http_body "/observe?window=3600" "$ADDR" "$TMP/obs-suffix.txt" | grep -q '200 OK' \
    || fail "observe append through the router failed"
PRED_WARM=$(http_body "/predict?window=3600" "$ADDR" "$TMP/obs-full.txt" | sed -n 's/^prediction 777 //p')
within_gate "$PRED_WARM" "$PRED_COLD" \
    || fail "streamed cascade drifted past the parity gate ($PRED_COLD -> $PRED_WARM)"
# Refresh leg: one more append at a wider window forces the live state
# through its window-crossing refresh; the served prediction must again
# match a from-scratch prediction of the grown cascade within the gate.
echo "event 5 2 30" >> "$TMP/obs-full.txt"
PRED_COLD7=$(http_body "/predict?window=7200" "$ADDR" "$TMP/obs-full.txt" | sed -n 's/^prediction 777 //p')
{ head -n 1 "$TMP/obs-full.txt"; echo "event 5 2 30"; } > "$TMP/obs-suffix2.txt"
http_body "/observe?window=7200" "$ADDR" "$TMP/obs-suffix2.txt" | grep -q '200 OK' \
    || fail "window-crossing observe through the router failed"
PRED_WARM7=$(http_body "/predict?window=7200" "$ADDR" "$TMP/obs-full.txt" | sed -n 's/^prediction 777 //p')
within_gate "$PRED_WARM7" "$PRED_COLD7" \
    || fail "window-crossing refresh drifted past the parity gate ($PRED_COLD7 -> $PRED_WARM7)"

# 3c. Tier-wide count of streamed events, scraped while every replica is
#     still alive (the chaos phase resets the victim's counters).
OBS_EVENTS=0
for i in 0 1 2; do
    RADDR=$(sed -n "s/^replica $i listening on //p" "$TMP/router.log" | head -n 1)
    [ -n "$RADDR" ] || continue
    http GET /metrics "$RADDR" > "$TMP/observe-$i.metrics" || continue
    N=$(metric cascn_observe_events_total "$TMP/observe-$i.metrics")
    OBS_EVENTS=$((OBS_EVENTS + ${N:-0}))
done
[ "$OBS_EVENTS" -gt 0 ] || fail "no replica counted streamed observe events"

# Persist every replica's warm cache (fan-out through the router).
http POST /snapshot "$ADDR" | grep -q '200 OK' || fail "POST /snapshot did not fan out cleanly"

# 4. Pick a victim that actually holds cache entries, so its snapshot has
#    something to warm-start from.
VICTIM=""
for i in 0 1 2; do
    RADDR=$(sed -n "s/^replica $i listening on //p" "$TMP/router.log" | head -n 1)
    [ -n "$RADDR" ] || continue
    http GET /metrics "$RADDR" > "$TMP/replica-$i.metrics" || continue
    ENTRIES=$(metric cascn_spectral_cache_entries "$TMP/replica-$i.metrics")
    if [ -n "$ENTRIES" ] && [ "$ENTRIES" -gt 0 ]; then
        VICTIM=$i
        break
    fi
done
[ -n "$VICTIM" ] || fail "no replica holds spectral cache entries after the warm phase"
OLD_PID=$(sed -n "s/^replica $VICTIM pid //p" "$TMP/router.log" | head -n 1)
[ -n "$OLD_PID" ] || fail "no pid announce line for replica $VICTIM"

# 5. Chaos phase: kill -9 the victim while loadgen is mid-run. Every
#    client must see 200 (exact answer) or 503 (shed) — never anything
#    else; loadgen exits nonzero on any other outcome. The request count
#    is sized so the run comfortably outlasts the kill.
"$LOADGEN" --addr "$ADDR" --requests 2000 --concurrency 4 --n-cascades 20 \
    --window 3600 --seed 7 > "$TMP/chaos.log" &
LOADGEN_PID=$!
sleep 0.1
kill -9 "$OLD_PID" 2> /dev/null || true
kill -0 "$LOADGEN_PID" 2> /dev/null || fail "loadgen finished before the kill — not under load"
wait "$LOADGEN_PID" || fail "chaos-phase loadgen saw non-503 errors across the kill"

# 6. The supervisor must restart the victim with a new pid and the tier
#    must heal back to 3 live replicas.
NEW_PID=""
for _ in $(seq 1 300); do
    NEW_PID=$(sed -n "s/^replica $VICTIM pid //p" "$TMP/router.log" | sed -n 2p)
    [ -n "$NEW_PID" ] && break
    sleep 0.1
done
[ -n "$NEW_PID" ] || fail "replica $VICTIM was not restarted after kill -9"
[ "$NEW_PID" != "$OLD_PID" ] || fail "restart reused the old pid announce"
LIVE=""
for _ in $(seq 1 300); do
    http GET /metrics "$ADDR" > "$TMP/router.metrics" || true
    LIVE=$(metric cascn_router_replicas_live "$TMP/router.metrics")
    [ "${LIVE:-0}" = "3" ] && break
    sleep 0.1
done
[ "${LIVE:-0}" = "3" ] || fail "tier never healed back to 3 live replicas (live=$LIVE)"
RESTARTS=$(metric cascn_router_restarts_total "$TMP/router.metrics")
[ -n "$RESTARTS" ] && [ "$RESTARTS" -ge 1 ] || fail "expected restarts_total >= 1, got '${RESTARTS:-missing}'"

# 7. Warm-start proof: the restarted replica must have loaded its snapshot,
#    and re-offering the same payload pool must score warm hits on it
#    (rendezvous routing sends its payloads back to it).
NEW_RADDR=$(sed -n "s/^replica $VICTIM listening on //p" "$TMP/router.log" | sed -n 2p)
[ -n "$NEW_RADDR" ] || fail "restarted replica never published a new address"
"$LOADGEN" --addr "$ADDR" --requests 120 --concurrency 4 --n-cascades 20 \
    --window 3600 --seed 7 > "$TMP/rewarm.log" \
    || fail "re-warm loadgen reported failures"
http GET /metrics "$NEW_RADDR" > "$TMP/victim.metrics" || fail "cannot scrape restarted replica"
WARM_LOAD=$(metric 'cascn_snapshot_load{result="warm"}' "$TMP/victim.metrics")
[ "${WARM_LOAD:-0}" = "1" ] || fail "restarted replica did not warm-load its snapshot (warm=$WARM_LOAD)"
WARM_HITS=$(metric cascn_spectral_cache_warm_hits_total "$TMP/victim.metrics")
[ -n "$WARM_HITS" ] && [ "$WARM_HITS" -gt 0 ] \
    || fail "expected warm-start cache hits on the restarted replica, got '${WARM_HITS:-missing}'"

# 7b. Per-replica latency: drive the three replicas directly with
#     --target-list so loadgen's per-target breakdown exposes each
#     replica's own p50/p99 (the router percentiles pool the tier, which
#     hides a single slow replica).
for i in 0 1 2; do
    sed -n "s/^replica $i listening on //p" "$TMP/router.log" | tail -n 1
done > "$TMP/targets.txt"
[ "$(wc -l < "$TMP/targets.txt")" -eq 3 ] || fail "could not collect 3 replica addresses"
"$LOADGEN" --target-list "$TMP/targets.txt" --requests 120 --concurrency 3 \
    --n-cascades 20 --window 3600 --seed 7 > "$TMP/per-replica.log" \
    || fail "per-replica loadgen reported failures"
grep -q '^target\[2\] ' "$TMP/per-replica.log" || fail "loadgen printed no per-target breakdown"

# 7c. Next-user serving leg: train a tiny next-user checkpoint on the same
#     data, serve it with a single `cascn-serve --task next-user`, and
#     drive a mixed /predict + /predict_next stream at it. The loadgen
#     `predict_next:` latency line feeds the BENCH_serve.json block the
#     serve_check ratchet gates.
"$CASCN" train --data "$TMP/d.cascades" --task next-user --window 3600 --hidden 4 \
    --max-nodes 10 --max-steps 5 --min-size 3 --epochs 2 --out "$TMP/next.ckpt" \
    > "$TMP/next-train.log" || fail "next-user training failed"
[ -s "$TMP/next.ckpt" ] || fail "next-user training wrote no checkpoint"
VOCAB=$(sed -n 's/.*vocab \([0-9]*\).*/\1/p' "$TMP/next-train.log" | head -n 1)
[ -n "$VOCAB" ] || fail "next-user training printed no vocab size"
"$SERVE" --model "$TMP/next.ckpt" --task next-user --vocab-users "$VOCAB" \
    --addr 127.0.0.1:0 --window 3600 --hidden 4 --max-nodes 10 --max-steps 5 \
    > "$TMP/next-server.log" 2>&1 &
NEXT_PID=$!
NADDR=""
for _ in $(seq 1 300); do
    NADDR=$(sed -n 's/^listening on //p' "$TMP/next-server.log" | head -n 1)
    [ -n "$NADDR" ] && break
    kill -0 "$NEXT_PID" 2> /dev/null || fail "next-user server exited before listening"
    sleep 0.1
done
[ -n "$NADDR" ] || fail "next-user server never reported its address"
"$LOADGEN" --addr "$NADDR" --requests 120 --concurrency 4 --n-cascades 20 \
    --window 3600 --seed 7 --predict-next-ratio 0.5 --k 10 > "$TMP/next.log" \
    || fail "next-user loadgen reported failures (409s mean a task mismatch)"
grep -q '^predict_next: ' "$TMP/next.log" || fail "loadgen printed no predict_next latency line"
http POST /shutdown "$NADDR" > /dev/null || true
EXIT_CODE=0
wait "$NEXT_PID" || EXIT_CODE=$?
NEXT_PID=""
[ "$EXIT_CODE" -eq 0 ] || fail "next-user server exited with code $EXIT_CODE"

# 8. Clean shutdown through the router (it stops its replicas too).
http GET /metrics "$ADDR" > "$TMP/router.metrics" || true
http POST /shutdown "$ADDR" > /dev/null || true
EXIT_CODE=0
wait "$ROUTER_PID" || EXIT_CODE=$?
ROUTER_PID=""
[ "$EXIT_CODE" -eq 0 ] || fail "router exited with code $EXIT_CODE"

# 9. Emit BENCH_serve.json — first point of the serving perf trajectory.
P50=$(metric 'cascn_router_latency_us{quantile="0.5"}' "$TMP/router.metrics")
P99=$(metric 'cascn_router_latency_us{quantile="0.99"}' "$TMP/router.metrics")
SHED=$(metric 'cascn_router_requests_total{class="shed"}' "$TMP/router.metrics")
FAILOVERS=$(metric cascn_router_failovers_total "$TMP/router.metrics")
WARM_ENTRIES=$(metric cascn_spectral_cache_warm_entries "$TMP/victim.metrics")
HITS=$(metric cascn_spectral_cache_hits_total "$TMP/victim.metrics")
WARM_RATE=$(awk -v w="${WARM_HITS:-0}" -v h="${HITS:-0}" \
    'BEGIN { printf "%.4f", (h > 0) ? w / h : 0 }')
# Streaming-ingestion stats: loadgen's `observe: N ok, p50 Xus p99 Yus`
# line from the warm phase, plus the tier-wide streamed-event count taken
# in step 3c.
OBS_OK=$(sed -n 's/^observe: \([0-9]*\) ok.*/\1/p' "$TMP/warm.log" | head -n 1)
OBS_P50=$(sed -n 's/^observe: .* p50 \([0-9]*\)us.*/\1/p' "$TMP/warm.log" | head -n 1)
OBS_P99=$(sed -n 's/^observe: .* p99 \([0-9]*\)us.*/\1/p' "$TMP/warm.log" | head -n 1)
# Next-user serving latency: loadgen's `predict_next: N ok, p50 Xus p99 Yus`
# line from the step-7c leg.
NEXT_OK=$(sed -n 's/^predict_next: \([0-9]*\) ok.*/\1/p' "$TMP/next.log" | head -n 1)
NEXT_P50=$(sed -n 's/^predict_next: .* p50 \([0-9]*\)us.*/\1/p' "$TMP/next.log" | head -n 1)
NEXT_P99=$(sed -n 's/^predict_next: .* p99 \([0-9]*\)us.*/\1/p' "$TMP/next.log" | head -n 1)
# Per-replica p50/p99 from loadgen's `target[i] addr: N ok, p50 Xus p99 Yus`
# lines, rendered as a JSON array.
PER_REPLICA=$(awk '
    /^target\[/ {
        if (out != "") out = out ","
        addr = $2; sub(/:$/, "", addr)
        p50 = $6; sub(/us/, "", p50)
        p99 = $8; sub(/us/, "", p99)
        out = out sprintf("\n    { \"addr\": \"%s\", \"ok\": %s, \"p50_us\": %s, \"p99_us\": %s }",
            addr, $3, p50, p99)
    }
    END { print out }
' "$TMP/per-replica.log")
cat > BENCH_serve.json << EOF
{
  "suite": "fleet_smoke",
  "tier": { "replicas": 3, "kill_dash_nine": 1 },
  "router": {
    "p50_us": ${P50:-0},
    "p99_us": ${P99:-0},
    "failovers_total": ${FAILOVERS:-0},
    "restarts_total": ${RESTARTS:-0}
  },
  "failover_window": {
    "shed_503": ${SHED:-0},
    "non_503_errors": 0
  },
  "warm_start": {
    "snapshot_loaded": ${WARM_LOAD:-0},
    "warm_entries": ${WARM_ENTRIES:-0},
    "warm_hits": ${WARM_HITS:-0},
    "warm_hit_rate": ${WARM_RATE}
  },
  "observe": {
    "ratio": 0.25,
    "ok": ${OBS_OK:-0},
    "p50_us": ${OBS_P50:-0},
    "p99_us": ${OBS_P99:-0},
    "streamed_events_total": ${OBS_EVENTS}
  },
  "predict_next": {
    "ratio": 0.5,
    "k": 10,
    "ok": ${NEXT_OK:-0},
    "p50_us": ${NEXT_P50:-0},
    "p99_us": ${NEXT_P99:-0}
  },
  "per_replica": [${PER_REPLICA}
  ]
}
EOF

# 10. Gate the emitted record against the checked-in serving baseline.
"$SERVE_CHECK" --check || fail "serve_check ratchet failed on BENCH_serve.json"

echo "fleet smoke OK: survived kill -9 of replica $VICTIM (pid $OLD_PID -> $NEW_PID)," \
    "${SHED:-0} shed / 0 hard errors across the window, ${WARM_HITS} warm-start hits," \
    "${NEXT_OK:-0} predict_next ok; BENCH_serve.json written and gated"
