#!/usr/bin/env bash
# Next-user smoke test: the microscopic task end to end, train → serve.
#
# Trains a tiny next-user checkpoint (masked softmax head over the derived
# user vocabulary, Hit@k/MAP printed on the test split), starts
# `cascn-serve --task next-user` on an ephemeral port, POSTs a cascade at
# /predict_next and asserts the ranked response: one `next <id>` line with
# k (user, probability) pairs, no probability above 1, and no user that
# already adopted inside the observation window (the mask contract).
# Also asserts the server's /metrics exposes predict_next latency
# quantiles, and that it shuts down cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."
CASCN=target/release/cascn
SERVE=target/release/cascn-serve
if [ ! -x "$CASCN" ] || [ ! -x "$SERVE" ]; then
    cargo build --release -q
fi
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2> /dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "next-user smoke FAILED: $1" >&2
    [ -f "$TMP/server.log" ] && tail -n 20 "$TMP/server.log" >&2
    exit 1
}

# One POST with a body file over bash's /dev/tcp; prints the raw response.
http_body() { # PATH ADDR BODYFILE
    local host=${2%:*} port=${2##*:} len
    len=$(wc -c < "$3")
    exec 3<> "/dev/tcp/$host/$port" || return 1
    {
        printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %s\r\n\r\n' \
            "$1" "$len"
        cat "$3"
    } >&3
    cat <&3
    exec 3<&- 3>&-
}

http() { # METHOD PATH ADDR
    local host=${3%:*} port=${3##*:}
    exec 3<> "/dev/tcp/$host/$port" || return 1
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: 0\r\n\r\n' \
        "$1" "$2" >&3
    cat <&3
    exec 3<&- 3>&-
}

# 1. Train a tiny next-user checkpoint; the printed `vocab N` is the
#    contract the serve flags must repeat.
"$CASCN" generate --dataset weibo --n 200 --seed 9 --out "$TMP/d.cascades" > /dev/null
"$CASCN" train --data "$TMP/d.cascades" --task next-user --window 3600 --hidden 4 \
    --max-nodes 10 --max-steps 5 --min-size 3 --epochs 2 --out "$TMP/next.ckpt" \
    > "$TMP/train.log" || fail "training failed"
[ -s "$TMP/next.ckpt" ] || fail "training wrote no checkpoint"
grep -q '^test (.*): Hit@1 ' "$TMP/train.log" || fail "training printed no Hit@k/MAP line"
VOCAB=$(sed -n 's/.*vocab \([0-9]*\).*/\1/p' "$TMP/train.log" | head -n 1)
[ -n "$VOCAB" ] || fail "training printed no vocab size"

# 2. Serve it.
"$SERVE" --model "$TMP/next.ckpt" --task next-user --vocab-users "$VOCAB" \
    --addr 127.0.0.1:0 --window 3600 --hidden 4 --max-nodes 10 --max-steps 5 \
    > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's/^listening on //p' "$TMP/server.log" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2> /dev/null || fail "server exited before listening"
    sleep 0.1
done
[ -n "$ADDR" ] || fail "server never reported its address"

# 3. Ask for the top-5 next adopters of a hand-written cascade whose users
#    1..4 adopted inside the window.
{
    echo "cascade 42 0"
    echo "event 1 - 0"
    echo "event 2 0 5"
    echo "event 3 0 10"
    echo "event 4 1 20"
} > "$TMP/req.txt"
http_body "/predict_next?window=3600&k=5" "$ADDR" "$TMP/req.txt" > "$TMP/resp.txt" \
    || fail "POST /predict_next failed"
grep -q '200 OK' "$TMP/resp.txt" || fail "predict_next did not answer 200"
LINE=$(sed -n 's/^next 42 //p' "$TMP/resp.txt" | head -n 1)
[ -n "$LINE" ] || fail "no 'next 42' ranking line in the response"
# k=5 pairs → 10 whitespace-separated fields.
set -- $LINE
[ "$#" -eq 10 ] || fail "expected 5 (user, prob) pairs, got $# fields: $LINE"
while [ "$#" -gt 0 ]; do
    USER=$1 PROB=$2
    shift 2
    for U in 1 2 3 4; do
        [ "$USER" != "$U" ] || fail "infected user $U ranked as a next adopter"
    done
    awk -v p="$PROB" 'BEGIN { exit !(p >= 0 && p <= 1) }' \
        || fail "probability $PROB outside [0, 1]"
done

# 4. The latency histogram must have recorded the request.
http GET /metrics "$ADDR" > "$TMP/metrics.txt" || fail "cannot scrape metrics"
COUNT=$(sed -n 's/^cascn_predict_next_latency_us_count //p' "$TMP/metrics.txt" | head -n 1)
[ -n "$COUNT" ] && [ "$COUNT" -ge 1 ] \
    || fail "predict_next latency histogram count is '${COUNT:-missing}'"
grep -q 'cascn_predict_next_latency_us{quantile="0.99"}' "$TMP/metrics.txt" \
    || fail "missing predict_next latency quantile"

# 5. Clean shutdown.
http POST /shutdown "$ADDR" > /dev/null || true
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[ "$EXIT_CODE" -eq 0 ] || fail "server exited with code $EXIT_CODE"

echo "next-user smoke OK: vocab $VOCAB, masked top-5 served, latency histogram count $COUNT, clean shutdown"
